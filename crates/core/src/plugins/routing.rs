//! Flow-aware routing plugin — the paper's §8 future work realised:
//! "By unifying routing and packet classification, we get QoS-based
//! routing / Level 4 switching for free."
//!
//! An instance carries an egress interface; binding it to a six-tuple
//! filter routes matching flows out that interface *based on the full
//! classification*, overriding the destination-only core routing table.

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use crate::plugins::{config_map, config_num};
use rp_packet::mbuf::IfIndex;
use rp_packet::Mbuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An L4-switching instance: forces matched flows out one interface.
pub struct RoutingInstance {
    tx_if: IfIndex,
    switched: AtomicU64,
}

impl RoutingInstance {
    /// Packets steered by this instance.
    pub fn switched(&self) -> u64 {
        self.switched.load(Ordering::Relaxed)
    }
}

impl PluginInstance for RoutingInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        mbuf.tx_if = Some(self.tx_if);
        self.switched.fetch_add(1, Ordering::Relaxed);
        PluginAction::Continue
    }

    fn describe(&self) -> String {
        format!("l4route → if{}: {} switched", self.tx_if, self.switched())
    }
}

/// The routing plugin module.
#[derive(Default)]
pub struct RoutingPlugin {
    _priv: (),
}

impl Plugin for RoutingPlugin {
    fn name(&self) -> &str {
        "l4route"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::ROUTING, 1)
    }

    /// Config: `tx_if=<n>` (required).
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        if !map.contains_key("tx_if") {
            return Err(PluginError::BadConfig("tx_if=<n> required".to_string()));
        }
        let tx_if: IfIndex = config_num(&map, "tx_if", 0)?;
        Ok(Arc::new(RoutingInstance {
            tx_if,
            switched: AtomicU64::new(0),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::mbuf::FlowIndex;

    #[test]
    fn sets_egress() {
        let mut p = RoutingPlugin::default();
        let inst = p.create_instance("tx_if=3").unwrap();
        let mut m = Mbuf::new(vec![0u8; 20], 0);
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Routing,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        assert_eq!(inst.handle_packet(&mut m, &mut ctx), PluginAction::Continue);
        assert_eq!(m.tx_if, Some(3));
        assert!(inst.describe().contains("if3"));
    }

    #[test]
    fn missing_config_rejected() {
        let mut p = RoutingPlugin::default();
        assert!(matches!(
            p.create_instance(""),
            Err(PluginError::BadConfig(_))
        ));
    }
}
