//! Statistics-gathering plugin — the paper's network-management use case
//! (§2: "monitor transit traffic … gather and report various statistics
//! … change the kinds of statistics being collected without incurring
//! significant overhead on the data path").
//!
//! Per-flow counters live in the flow record's soft-state slot (zero
//! hashing on the hot path); aggregate counters in the instance.

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use parking_lot::Mutex;
use rp_packet::{FlowTuple, Mbuf};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-flow counters kept in flow-record soft state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlowCounters {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
}

/// A statistics instance.
#[derive(Default)]
pub struct StatsInstance {
    total_packets: AtomicU64,
    total_bytes: AtomicU64,
    /// Counters of flows that left the cache (folded in on eviction so
    /// long-term reports stay complete).
    retired: Mutex<HashMap<String, FlowCounters>>,
}

impl StatsInstance {
    /// Total packets observed.
    pub fn packets(&self) -> u64 {
        self.total_packets.load(Ordering::Relaxed)
    }

    /// Total bytes observed.
    pub fn bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }
}

impl PluginInstance for StatsInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        self.total_packets.fetch_add(1, Ordering::Relaxed);
        self.total_bytes
            .fetch_add(mbuf.len() as u64, Ordering::Relaxed);
        let counters = ctx
            .soft_state
            .get_or_insert_with(|| Box::new(FlowCounters::default()));
        if let Some(c) = counters.downcast_mut::<FlowCounters>() {
            c.packets += 1;
            c.bytes += mbuf.len() as u64;
        }
        PluginAction::Continue
    }

    fn flow_unbound(&self, key: &FlowTuple, soft_state: Option<Box<dyn Any + Send>>) {
        if let Some(c) = soft_state.and_then(|b| b.downcast::<FlowCounters>().ok()) {
            self.retired.lock().insert(key.to_string(), *c);
        }
    }

    fn describe(&self) -> String {
        format!(
            "stats: {} pkts / {} bytes, {} retired flows",
            self.packets(),
            self.bytes(),
            self.retired.lock().len()
        )
    }
}

/// The statistics plugin module.
#[derive(Default)]
pub struct StatsPlugin {
    _priv: (),
}

impl Plugin for StatsPlugin {
    fn name(&self) -> &str {
        "stats"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::STATS, 1)
    }

    fn create_instance(&mut self, _config: &str) -> Result<InstanceRef, PluginError> {
        Ok(Arc::new(StatsInstance::default()))
    }

    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        _args: &str,
    ) -> Result<String, PluginError> {
        match (name, instance) {
            ("report", Some(inst)) => Ok(inst.describe()),
            ("report", None) => Err(PluginError::BadConfig(
                "report needs an instance".to_string(),
            )),
            (other, _) => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::mbuf::FlowIndex;
    use std::net::{IpAddr, Ipv4Addr};

    fn ctx_call(inst: &StatsInstance, soft: &mut Option<Box<dyn Any + Send>>, len: usize) {
        let mut m = Mbuf::new(vec![0u8; len], 0);
        let mut ctx = PacketCtx {
            gate: Gate::Stats,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: soft,
            cost_ns: 0,
        };
        inst.handle_packet(&mut m, &mut ctx);
    }

    #[test]
    fn per_flow_and_totals() {
        let inst = StatsInstance::default();
        let mut flow_a = None;
        let mut flow_b = None;
        ctx_call(&inst, &mut flow_a, 100);
        ctx_call(&inst, &mut flow_a, 100);
        ctx_call(&inst, &mut flow_b, 50);
        assert_eq!(inst.packets(), 3);
        assert_eq!(inst.bytes(), 250);
        let a = flow_a.unwrap();
        let a = a.downcast_ref::<FlowCounters>().unwrap();
        assert_eq!((a.packets, a.bytes), (2, 200));
    }

    #[test]
    fn eviction_folds_into_retired() {
        let inst = StatsInstance::default();
        let mut soft = None;
        ctx_call(&inst, &mut soft, 64);
        let key = FlowTuple {
            src: IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4)),
            dst: IpAddr::V4(Ipv4Addr::new(5, 6, 7, 8)),
            proto: 17,
            sport: 1,
            dport: 2,
            rx_if: 0,
        };
        inst.flow_unbound(&key, soft.take());
        assert!(inst.describe().contains("1 retired"));
    }
}
