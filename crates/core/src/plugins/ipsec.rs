//! IP security plugins (paper §2/§3.2: "IP security functions are
//! modularized and come in the form of plugins", RFC 1825-era IPsec).
//!
//! Two modules: **ah** (Authentication Header, HMAC-SHA1-96 integrity)
//! and **esp** (Encapsulating Security Payload, confidentiality). Both
//! operate on IPv6 transport-mode packets — the wire format the paper's
//! testbed forwards — and instances are direction-specific (`mode=sign` /
//! `mode=verify`, `mode=encap` / `mode=decap`), so the same plugin serves
//! both the VPN entry and exit sides under different instances (the
//! "SEC1"/"SEC2" instances of Figure 3). Receivers enforce the standard
//! 64-entry anti-replay window.

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use crate::plugins::{config_map, config_num};
use parking_lot::Mutex;
use rp_packet::ipsec::{
    ah_icv, esp_decapsulate, esp_encapsulate, AhHeader, ToyCipher, AH_TOTAL_LEN,
};
use rp_packet::ipv6::{Ipv6Packet, HEADER_LEN as V6_HDR};
use rp_packet::{hmac, Mbuf, Protocol};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// RFC 2401 sliding anti-replay window (64 entries).
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayWindow {
    highest: u32,
    bitmap: u64,
}

impl ReplayWindow {
    /// Accept or reject sequence number `seq`; updates state on accept.
    pub fn check_and_update(&mut self, seq: u32) -> bool {
        if seq == 0 {
            return false; // 0 is never used by a conformant sender
        }
        if seq > self.highest {
            let shift = seq - self.highest;
            self.bitmap = if shift >= 64 { 0 } else { self.bitmap << shift };
            self.bitmap |= 1;
            self.highest = seq;
            return true;
        }
        let offset = self.highest - seq;
        if offset >= 64 {
            return false; // too old
        }
        let bit = 1u64 << offset;
        if self.bitmap & bit != 0 {
            return false; // replay
        }
        self.bitmap |= bit;
        true
    }
}

/// Replace an IPv6 packet's payload and first next-header in place.
fn rebuild_v6(mbuf: &mut Mbuf, next: Protocol, payload: &[u8]) -> Result<(), ()> {
    let old = mbuf.data();
    if old.len() < V6_HDR {
        return Err(());
    }
    let mut buf = Vec::with_capacity(V6_HDR + payload.len());
    buf.extend_from_slice(&old[..V6_HDR]);
    buf.extend_from_slice(payload);
    {
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        pkt.set_next_header(next);
        pkt.set_payload_len(payload.len() as u16);
    }
    mbuf.replace_data(buf);
    Ok(())
}

enum AhMode {
    Sign,
    Verify,
}

/// An AH instance (one security association).
pub struct AhInstance {
    mode: AhMode,
    key: Vec<u8>,
    spi: u32,
    seq: AtomicU64,
    replay: Mutex<ReplayWindow>,
    auth_failures: AtomicU64,
}

impl AhInstance {
    /// Authentication failures observed (verify mode).
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures.load(Ordering::Relaxed)
    }
}

impl PluginInstance for AhInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        let Ok(pkt) = Ipv6Packet::new_checked(mbuf.data()) else {
            return PluginAction::Continue; // not IPv6: out of scope
        };
        match self.mode {
            AhMode::Sign => {
                let inner = pkt.next_header();
                let payload = pkt.payload().to_vec();
                let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u32 + 1;
                let mut ah_buf = vec![0u8; AH_TOTAL_LEN];
                {
                    let mut ah = AhHeader::new_unchecked(&mut ah_buf[..]);
                    ah.set_next_header(inner);
                    ah.set_total_len(AH_TOTAL_LEN);
                    ah.set_spi(self.spi);
                    ah.set_seq(seq);
                    let icv = ah_icv(&self.key, self.spi, seq, inner, &payload);
                    ah.set_icv(&icv);
                }
                ah_buf.extend_from_slice(&payload);
                if rebuild_v6(mbuf, Protocol::Ah, &ah_buf).is_err() {
                    return PluginAction::Drop;
                }
                PluginAction::Continue
            }
            AhMode::Verify => {
                if pkt.next_header() != Protocol::Ah {
                    // Policy says authenticated traffic only.
                    self.auth_failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                }
                let payload = pkt.payload().to_vec();
                let Ok(ah) = AhHeader::new_checked(&payload[..]) else {
                    self.auth_failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                };
                let inner = ah.next_header();
                let ah_len = ah.total_len();
                let spi = ah.spi();
                let seq = ah.seq();
                let body = &payload[ah_len..];
                let want = ah_icv(&self.key, spi, seq, inner, body);
                if spi != self.spi || !hmac::verify_mac(ah.icv(), &want) {
                    self.auth_failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                }
                if !self.replay.lock().check_and_update(seq) {
                    self.auth_failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                }
                let body = body.to_vec();
                if rebuild_v6(mbuf, inner, &body).is_err() {
                    return PluginAction::Drop;
                }
                PluginAction::Continue
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "ah spi={} mode={} failures={}",
            self.spi,
            match self.mode {
                AhMode::Sign => "sign",
                AhMode::Verify => "verify",
            },
            self.auth_failures()
        )
    }
}

/// The AH plugin module.
#[derive(Default)]
pub struct AhPlugin {
    _priv: (),
}

impl Plugin for AhPlugin {
    fn name(&self) -> &str {
        "ah"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::IP_SECURITY, 1)
    }

    /// Config: `mode=sign|verify key=<string> spi=<n>`.
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let mode = match map.get("mode").map(String::as_str) {
            Some("sign") => AhMode::Sign,
            Some("verify") => AhMode::Verify,
            other => {
                return Err(PluginError::BadConfig(format!(
                    "mode=sign|verify required, got {other:?}"
                )))
            }
        };
        let key = map
            .get("key")
            .ok_or_else(|| PluginError::BadConfig("key=<secret> required".to_string()))?
            .clone()
            .into_bytes();
        let spi: u32 = config_num(&map, "spi", 256)?;
        Ok(Arc::new(AhInstance {
            mode,
            key,
            spi,
            seq: AtomicU64::new(0),
            replay: Mutex::new(ReplayWindow::default()),
            auth_failures: AtomicU64::new(0),
        }))
    }
}

enum EspMode {
    Encap,
    Decap,
}

/// An ESP instance (one security association).
pub struct EspInstance {
    mode: EspMode,
    cipher: ToyCipher,
    spi: u32,
    seq: AtomicU64,
    replay: Mutex<ReplayWindow>,
    failures: AtomicU64,
}

impl EspInstance {
    /// Decapsulation failures observed.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

impl PluginInstance for EspInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        let Ok(pkt) = Ipv6Packet::new_checked(mbuf.data()) else {
            return PluginAction::Continue;
        };
        match self.mode {
            EspMode::Encap => {
                let inner = pkt.next_header();
                let payload = pkt.payload().to_vec();
                let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u32 + 1;
                let esp = esp_encapsulate(&self.cipher, self.spi, seq, inner, &payload);
                if rebuild_v6(mbuf, Protocol::Esp, &esp).is_err() {
                    return PluginAction::Drop;
                }
                PluginAction::Continue
            }
            EspMode::Decap => {
                if pkt.next_header() != Protocol::Esp {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                }
                let payload = pkt.payload().to_vec();
                let Ok(esp) = rp_packet::ipsec::EspPacket::new_checked(&payload[..]) else {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                };
                if esp.spi() != self.spi || !self.replay.lock().check_and_update(esp.seq()) {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    return PluginAction::Drop;
                }
                match esp_decapsulate(&self.cipher, &payload) {
                    Ok((inner, plain)) => {
                        if rebuild_v6(mbuf, inner, &plain).is_err() {
                            return PluginAction::Drop;
                        }
                        PluginAction::Continue
                    }
                    Err(_) => {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        PluginAction::Drop
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "esp spi={} mode={} failures={}",
            self.spi,
            match self.mode {
                EspMode::Encap => "encap",
                EspMode::Decap => "decap",
            },
            self.failures()
        )
    }
}

/// The ESP plugin module.
#[derive(Default)]
pub struct EspPlugin {
    _priv: (),
}

impl Plugin for EspPlugin {
    fn name(&self) -> &str {
        "esp"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::IP_SECURITY, 2)
    }

    /// Config: `mode=encap|decap key=<string> spi=<n>`.
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let mode = match map.get("mode").map(String::as_str) {
            Some("encap") => EspMode::Encap,
            Some("decap") => EspMode::Decap,
            other => {
                return Err(PluginError::BadConfig(format!(
                    "mode=encap|decap required, got {other:?}"
                )))
            }
        };
        let key = map
            .get("key")
            .ok_or_else(|| PluginError::BadConfig("key=<secret> required".to_string()))?;
        let spi: u32 = config_num(&map, "spi", 257)?;
        Ok(Arc::new(EspInstance {
            mode,
            cipher: ToyCipher::new(key.as_bytes()),
            spi,
            seq: AtomicU64::new(0),
            replay: Mutex::new(ReplayWindow::default()),
            failures: AtomicU64::new(0),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::builder::PacketSpec;
    use rp_packet::mbuf::FlowIndex;
    use rp_packet::FlowTuple;
    use std::net::{IpAddr, Ipv6Addr};

    fn v6(a: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, a))
    }

    fn call(inst: &InstanceRef, m: &mut Mbuf) -> PluginAction {
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::IpSecurity,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        inst.handle_packet(m, &mut ctx)
    }

    #[test]
    fn replay_window_semantics() {
        let mut w = ReplayWindow::default();
        assert!(w.check_and_update(1));
        assert!(!w.check_and_update(1)); // replay
        assert!(w.check_and_update(5));
        assert!(w.check_and_update(3)); // within window, unseen
        assert!(!w.check_and_update(3)); // replay
        assert!(w.check_and_update(100));
        assert!(!w.check_and_update(5)); // fell out of the 64-window? 100-5=95 ≥ 64 → too old
        assert!(w.check_and_update(99));
        assert!(!w.check_and_update(0));
    }

    #[test]
    fn ah_sign_verify_roundtrip() {
        let mut ap = AhPlugin::default();
        let signer = ap.create_instance("mode=sign key=s3cret spi=7").unwrap();
        let verifier = ap.create_instance("mode=verify key=s3cret spi=7").unwrap();
        let original = PacketSpec::udp(v6(1), v6(2), 1000, 2000, 64).build();
        let mut m = Mbuf::new(original.clone(), 0);
        assert_eq!(call(&signer, &mut m), PluginAction::Continue);
        // Signed packet: next header is AH, longer.
        let pkt = Ipv6Packet::new_checked(m.data()).unwrap();
        assert_eq!(pkt.next_header(), Protocol::Ah);
        assert!(m.len() > original.len());
        // Verify restores the original bytes.
        assert_eq!(call(&verifier, &mut m), PluginAction::Continue);
        assert_eq!(m.data(), &original[..]);
        // The six-tuple survives the round trip.
        let t = FlowTuple::extract(m.data(), 0).unwrap();
        assert_eq!((t.sport, t.dport), (1000, 2000));
    }

    #[test]
    fn ah_tamper_detected() {
        let mut ap = AhPlugin::default();
        let signer = ap.create_instance("mode=sign key=k spi=7").unwrap();
        let verifier = ap.create_instance("mode=verify key=k spi=7").unwrap();
        let mut m = Mbuf::new(PacketSpec::udp(v6(1), v6(2), 1, 2, 32).build(), 0);
        call(&signer, &mut m);
        let last = m.len() - 1;
        m.data_mut()[last] ^= 0xFF; // tamper with the payload
        assert_eq!(call(&verifier, &mut m), PluginAction::Drop);
    }

    #[test]
    fn ah_wrong_key_or_unauthenticated_dropped() {
        let mut ap = AhPlugin::default();
        let signer = ap.create_instance("mode=sign key=right spi=7").unwrap();
        let verifier = ap.create_instance("mode=verify key=wrong spi=7").unwrap();
        let mut m = Mbuf::new(PacketSpec::udp(v6(1), v6(2), 1, 2, 32).build(), 0);
        call(&signer, &mut m);
        assert_eq!(call(&verifier, &mut m), PluginAction::Drop);
        // Plain traffic at a verify instance is also dropped.
        let mut plain = Mbuf::new(PacketSpec::udp(v6(1), v6(2), 1, 2, 32).build(), 0);
        assert_eq!(call(&verifier, &mut plain), PluginAction::Drop);
    }

    #[test]
    fn ah_replayed_packet_dropped() {
        let mut ap = AhPlugin::default();
        let signer = ap.create_instance("mode=sign key=k spi=7").unwrap();
        let verifier = ap.create_instance("mode=verify key=k spi=7").unwrap();
        let mut m = Mbuf::new(PacketSpec::udp(v6(1), v6(2), 1, 2, 32).build(), 0);
        call(&signer, &mut m);
        let replayed = m.clone();
        assert_eq!(call(&verifier, &mut m), PluginAction::Continue);
        let mut m2 = replayed;
        assert_eq!(call(&verifier, &mut m2), PluginAction::Drop);
    }

    #[test]
    fn esp_encap_decap_roundtrip() {
        let mut ep = EspPlugin::default();
        let enc = ep.create_instance("mode=encap key=vpn spi=9").unwrap();
        let dec = ep.create_instance("mode=decap key=vpn spi=9").unwrap();
        let original = PacketSpec::tcp(v6(1), v6(2), 443, 555, 128).build();
        let mut m = Mbuf::new(original.clone(), 0);
        assert_eq!(call(&enc, &mut m), PluginAction::Continue);
        let pkt = Ipv6Packet::new_checked(m.data()).unwrap();
        assert_eq!(pkt.next_header(), Protocol::Esp);
        // Payload is ciphertext: ports are no longer recoverable.
        let t = FlowTuple::extract(m.data(), 0).unwrap();
        assert_eq!(t.proto, u8::from(Protocol::Esp));
        assert_eq!(call(&dec, &mut m), PluginAction::Continue);
        assert_eq!(m.data(), &original[..]);
    }

    #[test]
    fn esp_wrong_spi_dropped() {
        let mut ep = EspPlugin::default();
        let enc = ep.create_instance("mode=encap key=vpn spi=9").unwrap();
        let dec = ep.create_instance("mode=decap key=vpn spi=10").unwrap();
        let mut m = Mbuf::new(PacketSpec::udp(v6(1), v6(2), 1, 2, 16).build(), 0);
        call(&enc, &mut m);
        assert_eq!(call(&dec, &mut m), PluginAction::Drop);
    }

    #[test]
    fn config_validation() {
        let mut ap = AhPlugin::default();
        assert!(ap.create_instance("mode=sign").is_err()); // no key
        assert!(ap.create_instance("key=k").is_err()); // no mode
        let mut ep = EspPlugin::default();
        assert!(ep.create_instance("mode=sideways key=k").is_err());
    }
}
