//! TCP behaviour-monitoring plugin — one of the paper's envisioned types
//! (§4: "a plugin monitoring TCP congestion backoff behaviour").
//!
//! Tracks per-flow TCP state in flow-record soft state: connection
//! lifecycle (SYN/FIN/RST), forward sequence progress, and *suspected
//! retransmissions* (a segment whose end does not advance the highest
//! sequence seen — the classic passive loss/backoff signal). An
//! aggregate report ranks flows by retransmission ratio, the paper's
//! monitoring use case.

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use parking_lot::Mutex;
use rp_packet::ipv4::Ipv4Packet;
use rp_packet::ipv6::Ipv6Packet;
use rp_packet::tcp::{TcpFlags, TcpPacket};
use rp_packet::{FlowTuple, IpVersion, Mbuf};
use std::any::Any;
use std::sync::Arc;

/// Per-flow TCP accounting, kept in flow-record soft state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TcpFlowState {
    /// Segments seen.
    pub segments: u64,
    /// Suspected retransmissions (no forward sequence progress).
    pub retransmissions: u64,
    /// Highest sequence byte seen (`seq + payload`).
    pub highest_seq: u32,
    /// SYN observed.
    pub syn_seen: bool,
    /// FIN observed.
    pub fin_seen: bool,
    /// RST observed.
    pub rst_seen: bool,
}

#[derive(Default)]
struct Aggregate {
    segments: u64,
    retransmissions: u64,
    connections_opened: u64,
    connections_closed: u64,
    resets: u64,
    /// (flow, segments, retransmissions) of flows that left the cache.
    retired: Vec<(String, u64, u64)>,
}

/// A TCP-monitor instance.
#[derive(Default)]
pub struct TcpMonitorInstance {
    agg: Mutex<Aggregate>,
}

impl TcpMonitorInstance {
    /// Total suspected retransmissions observed.
    pub fn retransmissions(&self) -> u64 {
        self.agg.lock().retransmissions
    }

    /// Total TCP segments observed.
    pub fn segments(&self) -> u64 {
        self.agg.lock().segments
    }
}

fn tcp_view(data: &[u8]) -> Option<(u32, usize, TcpFlags)> {
    match IpVersion::of_packet(data).ok()? {
        IpVersion::V4 => {
            let ip = Ipv4Packet::new_checked(data).ok()?;
            if ip.protocol() != rp_packet::Protocol::Tcp {
                return None;
            }
            let tcp = TcpPacket::new_checked(ip.payload()).ok()?;
            Some((
                tcp.seq_number(),
                ip.payload().len() - tcp.header_len(),
                tcp.flags(),
            ))
        }
        IpVersion::V6 => {
            let ip = Ipv6Packet::new_checked(data).ok()?;
            let walk = rp_packet::ext_hdr::walk_chain(ip.next_header(), ip.payload()).ok()?;
            if walk.upper_protocol != rp_packet::Protocol::Tcp {
                return None;
            }
            let seg = &ip.payload()[walk.upper_offset..];
            let tcp = TcpPacket::new_checked(seg).ok()?;
            Some((tcp.seq_number(), seg.len() - tcp.header_len(), tcp.flags()))
        }
    }
}

impl PluginInstance for TcpMonitorInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let Some((seq, payload_len, flags)) = tcp_view(mbuf.data()) else {
            return PluginAction::Continue; // not TCP
        };
        let st = ctx
            .soft_state
            .get_or_insert_with(|| Box::new(TcpFlowState::default()));
        let Some(st) = st.downcast_mut::<TcpFlowState>() else {
            return PluginAction::Continue;
        };
        let mut agg = self.agg.lock();
        st.segments += 1;
        agg.segments += 1;
        if flags.contains(TcpFlags::SYN) && !st.syn_seen {
            st.syn_seen = true;
            agg.connections_opened += 1;
        }
        if flags.contains(TcpFlags::FIN) && !st.fin_seen {
            st.fin_seen = true;
            agg.connections_closed += 1;
        }
        if flags.contains(TcpFlags::RST) && !st.rst_seen {
            st.rst_seen = true;
            agg.resets += 1;
        }
        // Sequence-progress heuristic (wrap-aware via modular compare).
        let end = seq.wrapping_add(payload_len as u32);
        if st.segments == 1 {
            st.highest_seq = end;
        } else if payload_len > 0 {
            let advanced = end.wrapping_sub(st.highest_seq) as i32 > 0;
            if advanced {
                st.highest_seq = end;
            } else {
                st.retransmissions += 1;
                agg.retransmissions += 1;
            }
        }
        PluginAction::Continue
    }

    fn flow_unbound(&self, key: &FlowTuple, soft_state: Option<Box<dyn Any + Send>>) {
        if let Some(st) = soft_state.and_then(|b| b.downcast::<TcpFlowState>().ok()) {
            self.agg
                .lock()
                .retired
                .push((key.to_string(), st.segments, st.retransmissions));
        }
    }

    fn describe(&self) -> String {
        let a = self.agg.lock();
        format!(
            "tcpmon: {} segs, {} rexmits ({:.2}%), {} opens, {} closes, {} resets",
            a.segments,
            a.retransmissions,
            if a.segments > 0 {
                100.0 * a.retransmissions as f64 / a.segments as f64
            } else {
                0.0
            },
            a.connections_opened,
            a.connections_closed,
            a.resets
        )
    }
}

/// The TCP-monitor plugin module.
#[derive(Default)]
pub struct TcpMonitorPlugin {
    _priv: (),
}

impl Plugin for TcpMonitorPlugin {
    fn name(&self) -> &str {
        "tcpmon"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::STATS, 2)
    }

    fn create_instance(&mut self, _config: &str) -> Result<InstanceRef, PluginError> {
        Ok(Arc::new(TcpMonitorInstance::default()))
    }

    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        _args: &str,
    ) -> Result<String, PluginError> {
        match (name, instance) {
            ("report", Some(inst)) => Ok(inst.describe()),
            (other, _) => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::mbuf::FlowIndex;
    use rp_packet::tcp::TcpRepr;
    use std::net::{IpAddr, Ipv6Addr};

    fn v6(n: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n))
    }

    /// Hand-build a v6 TCP segment with explicit seq/flags/payload.
    fn tcp_packet(seq: u32, flags: TcpFlags, payload: usize) -> Vec<u8> {
        use rp_packet::ipv6::{Ipv6Packet, Ipv6Repr};
        let repr = TcpRepr {
            src_port: 1000,
            dst_port: 80,
            seq,
            ack: 1,
            flags,
            window: 65535,
            payload_len: payload,
        };
        let ip = Ipv6Repr {
            src_addr: "2001:db8::1".parse().unwrap(),
            dst_addr: "2001:db8::2".parse().unwrap(),
            next_header: rp_packet::Protocol::Tcp,
            payload_len: repr.buffer_len(),
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; 40 + repr.buffer_len()];
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut pkt);
        let mut t = TcpPacket::new_unchecked(pkt.payload_mut());
        repr.emit(&mut t);
        buf
    }

    fn feed(inst: &TcpMonitorInstance, soft: &mut Option<Box<dyn Any + Send>>, buf: Vec<u8>) {
        let mut m = Mbuf::new(buf, 0);
        let mut ctx = PacketCtx {
            gate: Gate::Stats,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: soft,
            cost_ns: 0,
        };
        inst.handle_packet(&mut m, &mut ctx);
    }

    #[test]
    fn retransmission_detection() {
        let inst = TcpMonitorInstance::default();
        let mut soft = None;
        feed(&inst, &mut soft, tcp_packet(1000, TcpFlags::SYN, 0));
        feed(&inst, &mut soft, tcp_packet(1001, TcpFlags::ACK, 100)); // 1001..1101
        feed(&inst, &mut soft, tcp_packet(1101, TcpFlags::ACK, 100)); // progress
        feed(&inst, &mut soft, tcp_packet(1101, TcpFlags::ACK, 100)); // retransmit!
        feed(&inst, &mut soft, tcp_packet(1201, TcpFlags::ACK, 100)); // progress
        assert_eq!(inst.retransmissions(), 1);
        assert_eq!(inst.segments(), 5);
        let st = soft.unwrap();
        let st = st.downcast_ref::<TcpFlowState>().unwrap();
        assert!(st.syn_seen);
        assert_eq!(st.retransmissions, 1);
    }

    #[test]
    fn lifecycle_counting() {
        let inst = TcpMonitorInstance::default();
        let mut soft = None;
        feed(&inst, &mut soft, tcp_packet(1, TcpFlags::SYN, 0));
        feed(&inst, &mut soft, tcp_packet(2, TcpFlags::ACK, 10));
        feed(
            &inst,
            &mut soft,
            tcp_packet(12, TcpFlags::FIN.union(TcpFlags::ACK), 0),
        );
        let d = inst.describe();
        assert!(d.contains("1 opens") && d.contains("1 closes"), "{d}");
        // Eviction records the flow.
        let key = FlowTuple {
            src: v6(1),
            dst: v6(2),
            proto: 6,
            sport: 1000,
            dport: 80,
            rx_if: 0,
        };
        inst.flow_unbound(&key, soft.take());
        assert_eq!(inst.agg.lock().retired.len(), 1);
    }

    #[test]
    fn non_tcp_ignored() {
        let inst = TcpMonitorInstance::default();
        let mut soft = None;
        let udp = rp_packet::builder::PacketSpec::udp(v6(1), v6(2), 1, 2, 32).build();
        feed(&inst, &mut soft, udp);
        assert_eq!(inst.segments(), 0);
        assert!(soft.is_none());
    }

    #[test]
    fn seq_wraparound_not_flagged() {
        let inst = TcpMonitorInstance::default();
        let mut soft = None;
        feed(
            &inst,
            &mut soft,
            tcp_packet(u32::MAX - 50, TcpFlags::ACK, 100),
        );
        // Wraps past 0: still forward progress.
        feed(&inst, &mut soft, tcp_packet(49, TcpFlags::ACK, 100));
        assert_eq!(inst.retransmissions(), 0);
    }
}
