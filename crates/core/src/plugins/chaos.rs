//! Chaos plugin: deliberate fault injection for supervision testing.
//!
//! A chaos instance misbehaves on demand — panicking, dropping, stalling
//! (charging absurd per-packet cost) or corrupting packet bytes — so the
//! supervisor's containment ([`crate::supervisor`]) can be exercised from
//! `pmgr` scripts and tests. Configured at `create` time and rearmed at
//! run time through the `set` custom message:
//!
//! ```text
//! create chaos mode=panic every=3
//! msg chaos 0 set mode=stall cost=99999999
//! msg chaos 0 status
//! ```
//!
//! * `mode` — `none` (default), `panic`, `panic-once`, `drop`, `stall`,
//!   `wedge`, `corrupt`
//! * `every` — fault on every Nth call (default 1 = every call)
//! * `cost` — cost in ns charged in `stall` mode (default 10^9)
//!
//! Two modes exist specifically for *shard*-level supervision testing:
//!
//! * `panic-once` disarms itself before panicking, so exactly one fault
//!   is injected no matter how many instances replay the configuration —
//!   a restarted shard rebuilt from the command journal comes back with
//!   the same chaos binding but does not immediately die again.
//! * `wedge` blocks the calling thread *inside* `handle_packet` until
//!   [`release_wedges`] is called — the plugin-supervisor's cost budget
//!   cannot see it (no virtual cost is charged; the thread really
//!   stops), which is exactly the failure a shard watchdog must catch
//!   from the outside via heartbeats.

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use rp_packet::Mbuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

const MODE_NONE: u8 = 0;
const MODE_PANIC: u8 = 1;
const MODE_DROP: u8 = 2;
const MODE_STALL: u8 = 3;
const MODE_CORRUPT: u8 = 4;
const MODE_WEDGE: u8 = 5;
const MODE_PANIC_ONCE: u8 = 6;

/// Bumped by [`release_wedges`]; a wedged call captures the value at
/// entry and spins (sleeping) until it changes. Global on purpose: a
/// wedged shard cannot be reached through control messages (that is the
/// point), so tests need an out-of-band release.
static WEDGE_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Release every thread currently wedged in a `mode=wedge` chaos
/// instance (they resume and forward the packet normally).
pub fn release_wedges() {
    WEDGE_EPOCH.fetch_add(1, Ordering::SeqCst);
}

fn parse_mode(s: &str) -> Result<u8, PluginError> {
    match s {
        "none" => Ok(MODE_NONE),
        "panic" => Ok(MODE_PANIC),
        "panic-once" => Ok(MODE_PANIC_ONCE),
        "drop" => Ok(MODE_DROP),
        "stall" => Ok(MODE_STALL),
        "corrupt" => Ok(MODE_CORRUPT),
        "wedge" => Ok(MODE_WEDGE),
        other => Err(PluginError::BadConfig(format!("bad mode={other}"))),
    }
}

fn mode_name(m: u8) -> &'static str {
    match m {
        MODE_PANIC => "panic",
        MODE_PANIC_ONCE => "panic-once",
        MODE_DROP => "drop",
        MODE_STALL => "stall",
        MODE_CORRUPT => "corrupt",
        MODE_WEDGE => "wedge",
        _ => "none",
    }
}

/// A chaos instance. All knobs are atomics so a bound instance can be
/// rearmed mid-stream through a custom message.
pub struct ChaosInstance {
    mode: AtomicU8,
    every: AtomicU64,
    cost_ns: AtomicU64,
    calls: AtomicU64,
}

impl ChaosInstance {
    fn new(mode: u8, every: u64, cost_ns: u64) -> Self {
        ChaosInstance {
            mode: AtomicU8::new(mode),
            every: AtomicU64::new(every.max(1)),
            cost_ns: AtomicU64::new(cost_ns),
            calls: AtomicU64::new(0),
        }
    }

    fn configure(&self, args: &str) -> Result<(), PluginError> {
        let map = super::config_map(args);
        if let Some(m) = map.get("mode") {
            self.mode.store(parse_mode(m)?, Ordering::Relaxed);
        }
        let every = super::config_num(&map, "every", self.every.load(Ordering::Relaxed))?;
        self.every.store(every.max(1), Ordering::Relaxed);
        let cost = super::config_num(&map, "cost", self.cost_ns.load(Ordering::Relaxed))?;
        self.cost_ns.store(cost, Ordering::Relaxed);
        Ok(())
    }

    fn status(&self) -> String {
        format!(
            "mode={} every={} cost={} calls={}",
            mode_name(self.mode.load(Ordering::Relaxed)),
            self.every.load(Ordering::Relaxed),
            self.cost_ns.load(Ordering::Relaxed),
            self.calls.load(Ordering::Relaxed),
        )
    }
}

impl PluginInstance for ChaosInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let every = self.every.load(Ordering::Relaxed).max(1);
        if !n.is_multiple_of(every) {
            return PluginAction::Continue;
        }
        match self.mode.load(Ordering::Relaxed) {
            MODE_PANIC => panic!("chaos: injected panic on call {n}"),
            MODE_PANIC_ONCE => {
                // Disarm before unwinding: the next call (or a journal-
                // rebuilt twin of this instance) behaves normally.
                self.mode.store(MODE_NONE, Ordering::SeqCst);
                panic!("chaos: injected one-shot panic on call {n}")
            }
            MODE_WEDGE => {
                // Genuinely stop the calling thread (not virtual cost):
                // hold until someone calls `release_wedges`.
                let entry = WEDGE_EPOCH.load(Ordering::SeqCst);
                while WEDGE_EPOCH.load(Ordering::SeqCst) == entry {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                PluginAction::Continue
            }
            MODE_DROP => PluginAction::Drop,
            MODE_STALL => {
                ctx.cost_ns = self.cost_ns.load(Ordering::Relaxed);
                PluginAction::Continue
            }
            MODE_CORRUPT => {
                // Flip one payload-ish byte (past the basic header so the
                // packet stays parseable and the damage travels end to
                // end, like a bad link would inflict).
                let data = mbuf.data_mut();
                if let Some(b) = data.last_mut() {
                    *b ^= 0xFF;
                }
                PluginAction::Continue
            }
            _ => PluginAction::Continue,
        }
    }

    fn describe(&self) -> String {
        format!("chaos {}", self.status())
    }
}

/// The chaos plugin module. Keeps concrete handles to its instances so
/// custom messages can reach their atomics (matched by pointer identity,
/// as the scheduler plugins do).
#[derive(Default)]
pub struct ChaosPlugin {
    instances: Vec<Arc<ChaosInstance>>,
}

impl Plugin for ChaosPlugin {
    fn name(&self) -> &str {
        "chaos"
    }

    fn code(&self) -> PluginCode {
        // A statistics-type code: chaos binds anywhere a filter points it,
        // like a monitoring plugin would.
        PluginCode::new(PluginType::STATS, 99)
    }

    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let inst = ChaosInstance::new(MODE_NONE, 1, 1_000_000_000);
        inst.configure(config)?;
        let inst = Arc::new(inst);
        self.instances.push(inst.clone());
        Ok(inst)
    }

    fn free_instance(&mut self, instance: &InstanceRef) {
        self.instances
            .retain(|i| !Arc::ptr_eq(&(i.clone() as InstanceRef), instance));
    }

    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        args: &str,
    ) -> Result<String, PluginError> {
        let target = instance
            .ok_or_else(|| PluginError::BadConfig("chaos message needs an instance".into()))?;
        let inst = self
            .instances
            .iter()
            .find(|i| Arc::ptr_eq(&((*i).clone() as InstanceRef), target))
            .ok_or_else(|| PluginError::BadConfig("not a chaos instance".into()))?
            .clone();
        match name {
            "set" => {
                inst.configure(args)?;
                Ok(inst.status())
            }
            "status" => Ok(inst.status()),
            other => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::builder::PacketSpec;
    use std::net::{IpAddr, Ipv4Addr};

    fn pkt() -> Mbuf {
        Mbuf::new(
            PacketSpec::udp(
                IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
                IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
                1,
                2,
                16,
            )
            .build(),
            0,
        )
    }

    fn call(inst: &ChaosInstance, m: &mut Mbuf) -> PluginAction {
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Stats,
            now_ns: 0,
            fix: rp_packet::mbuf::FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        inst.handle_packet(m, &mut ctx)
    }

    #[test]
    fn none_mode_passes_everything() {
        let inst = ChaosInstance::new(MODE_NONE, 1, 0);
        let mut m = pkt();
        for _ in 0..10 {
            assert_eq!(call(&inst, &mut m), PluginAction::Continue);
        }
    }

    #[test]
    fn drop_every_third() {
        let inst = ChaosInstance::new(MODE_DROP, 3, 0);
        let mut m = pkt();
        let actions: Vec<_> = (0..9).map(|_| call(&inst, &mut m)).collect();
        let drops = actions.iter().filter(|a| **a == PluginAction::Drop).count();
        assert_eq!(drops, 3);
        assert_eq!(actions[2], PluginAction::Drop);
        assert_eq!(actions[0], PluginAction::Continue);
    }

    #[test]
    fn stall_charges_cost() {
        let inst = ChaosInstance::new(MODE_STALL, 1, 42_000);
        let mut m = pkt();
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Stats,
            now_ns: 0,
            fix: rp_packet::mbuf::FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        assert_eq!(inst.handle_packet(&mut m, &mut ctx), PluginAction::Continue);
        assert_eq!(ctx.cost_ns, 42_000);
    }

    #[test]
    fn corrupt_flips_a_byte() {
        let inst = ChaosInstance::new(MODE_CORRUPT, 1, 0);
        let mut m = pkt();
        let before = m.data().to_vec();
        call(&inst, &mut m);
        assert_ne!(m.data(), &before[..]);
    }

    #[test]
    fn panic_mode_panics() {
        let inst = ChaosInstance::new(MODE_PANIC, 1, 0);
        let mut m = pkt();
        let err = crate::supervisor::run_isolated(|| call(&inst, &mut m)).unwrap_err();
        assert!(err.contains("injected panic"), "{err}");
    }

    #[test]
    fn panic_once_disarms_itself() {
        let inst = ChaosInstance::new(MODE_PANIC_ONCE, 1, 0);
        let mut m = pkt();
        let err = crate::supervisor::run_isolated(|| call(&inst, &mut m)).unwrap_err();
        assert!(err.contains("one-shot"), "{err}");
        // Second call: mode stored back to none, no fault.
        assert_eq!(call(&inst, &mut m), PluginAction::Continue);
        assert!(inst.status().contains("mode=none"), "{}", inst.status());
    }

    #[test]
    fn wedge_blocks_until_released() {
        let inst = Arc::new(ChaosInstance::new(MODE_WEDGE, 1, 0));
        let worker = {
            let inst = Arc::clone(&inst);
            std::thread::spawn(move || {
                let mut m = pkt();
                call(&inst, &mut m)
            })
        };
        // The worker is stuck inside handle_packet: give it time to enter
        // the wedge, confirm it has not finished, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!worker.is_finished(), "wedge did not hold the thread");
        release_wedges();
        let action = worker.join().unwrap();
        assert_eq!(action, PluginAction::Continue);
    }

    #[test]
    fn config_and_reconfig() {
        let mut plugin = ChaosPlugin::default();
        let inst = plugin.create_instance("mode=drop every=2").unwrap();
        let reply = plugin.custom_message(Some(&inst), "status", "").unwrap();
        assert!(reply.contains("mode=drop every=2"), "{reply}");
        let reply = plugin
            .custom_message(Some(&inst), "set", "mode=panic every=5")
            .unwrap();
        assert!(reply.contains("mode=panic every=5"), "{reply}");
        assert!(plugin.create_instance("mode=bogus").is_err());
        assert!(plugin.custom_message(None, "status", "").is_err());
    }
}
