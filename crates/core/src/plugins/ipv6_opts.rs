//! IPv6 option-processing plugin (the paper's first plugin type: "we use
//! gates for IPv6 option processing…"; an IP option plugin can be "a dozen
//! lines of code").
//!
//! The instance walks the hop-by-hop options header and applies RFC 2460
//! §4.2 semantics: padding is skipped, recognised options are counted,
//! and unrecognised options are handled according to their type's
//! high-order bits (skip / discard).

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use parking_lot::Mutex;
use rp_packet::ext_hdr::{ExtHeader, Ipv6Option};
use rp_packet::ipv6::Ipv6Packet;
use rp_packet::{Mbuf, Protocol};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters per option type.
#[derive(Default)]
struct OptCounters {
    seen: HashMap<u8, u64>,
    dropped: u64,
}

/// A hop-by-hop option-processing instance.
#[derive(Default)]
pub struct Ipv6OptsInstance {
    counters: Mutex<OptCounters>,
}

impl Ipv6OptsInstance {
    /// Times an option type was seen.
    pub fn seen(&self, kind: u8) -> u64 {
        *self.counters.lock().seen.get(&kind).unwrap_or(&0)
    }

    /// Packets dropped for carrying must-discard options.
    pub fn dropped(&self) -> u64 {
        self.counters.lock().dropped
    }
}

impl PluginInstance for Ipv6OptsInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        let Ok(pkt) = Ipv6Packet::new_checked(mbuf.data()) else {
            // Not IPv6 (or malformed): nothing for this gate to do.
            return PluginAction::Continue;
        };
        if pkt.next_header() != Protocol::HopByHop {
            return PluginAction::Continue;
        }
        let Ok(hbh) = ExtHeader::new_checked(pkt.payload()) else {
            return PluginAction::Drop;
        };
        let mut c = self.counters.lock();
        for opt in hbh.options() {
            let Ok(opt) = opt else {
                c.dropped += 1;
                return PluginAction::Drop;
            };
            if opt.is_padding() {
                continue;
            }
            match opt.kind {
                Ipv6Option::ROUTER_ALERT => {
                    *c.seen.entry(opt.kind).or_insert(0) += 1;
                }
                kind => {
                    *c.seen.entry(kind).or_insert(0) += 1;
                    if opt.unrecognised_action() != 0 {
                        // 1/2/3 = discard (we do not generate ICMP here).
                        c.dropped += 1;
                        return PluginAction::Drop;
                    }
                }
            }
        }
        PluginAction::Continue
    }

    fn describe(&self) -> String {
        let c = self.counters.lock();
        format!(
            "opt6: {} option kinds seen, {} dropped",
            c.seen.len(),
            c.dropped
        )
    }
}

/// The IPv6-options plugin module.
#[derive(Default)]
pub struct Ipv6OptsPlugin {
    _priv: (),
}

impl Plugin for Ipv6OptsPlugin {
    fn name(&self) -> &str {
        "opt6"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::IPV6_OPTS, 1)
    }

    fn create_instance(&mut self, _config: &str) -> Result<InstanceRef, PluginError> {
        Ok(Arc::new(Ipv6OptsInstance::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::builder::PacketSpec;
    use rp_packet::mbuf::FlowIndex;
    use std::net::{IpAddr, Ipv6Addr};

    fn v6(a: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, a))
    }

    fn call(inst: &Ipv6OptsInstance, buf: Vec<u8>) -> PluginAction {
        let mut m = Mbuf::new(buf, 0);
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Ipv6Options,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        inst.handle_packet(&mut m, &mut ctx)
    }

    #[test]
    fn router_alert_counted() {
        let inst = Ipv6OptsInstance::default();
        let buf = PacketSpec::udp(v6(1), v6(2), 1, 2, 8)
            .with_hbh_option(Ipv6Option::ROUTER_ALERT, vec![0, 0])
            .build();
        assert_eq!(call(&inst, buf), PluginAction::Continue);
        assert_eq!(inst.seen(Ipv6Option::ROUTER_ALERT), 1);
        assert_eq!(inst.dropped(), 0);
    }

    #[test]
    fn unknown_skippable_option_continues() {
        let inst = Ipv6OptsInstance::default();
        // Type 0x1E: high bits 00 → skip if unrecognised.
        let buf = PacketSpec::udp(v6(1), v6(2), 1, 2, 8)
            .with_hbh_option(0x1E, vec![1, 2, 3])
            .build();
        assert_eq!(call(&inst, buf), PluginAction::Continue);
        assert_eq!(inst.seen(0x1E), 1);
    }

    #[test]
    fn must_discard_option_drops() {
        let inst = Ipv6OptsInstance::default();
        // Type 0x40 | x: high bits 01 → discard if unrecognised.
        let buf = PacketSpec::udp(v6(1), v6(2), 1, 2, 8)
            .with_hbh_option(0x41, vec![])
            .build();
        assert_eq!(call(&inst, buf), PluginAction::Drop);
        assert_eq!(inst.dropped(), 1);
    }

    #[test]
    fn no_hbh_is_noop() {
        let inst = Ipv6OptsInstance::default();
        let buf = PacketSpec::udp(v6(1), v6(2), 1, 2, 8).build();
        assert_eq!(call(&inst, buf), PluginAction::Continue);
        // IPv4 packets pass through untouched too.
        let v4buf = PacketSpec::udp(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1,
            2,
            8,
        )
        .build();
        assert_eq!(call(&inst, v4buf), PluginAction::Continue);
    }
}
