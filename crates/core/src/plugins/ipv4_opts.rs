//! IPv4 option-processing plugin — the paper's canonical trivial plugin
//! ("a dozen lines of code for an IP option plugin", §4). Counts
//! recognised options; drops packets whose option area is malformed or
//! carries source routing (which a security-conscious router refuses).

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use parking_lot::Mutex;
use rp_packet::ipv4::Ipv4Packet;
use rp_packet::ipv4_opts::{OptionIter, OptionKind};
use rp_packet::Mbuf;
use std::collections::HashMap;
use std::sync::Arc;

/// Loose/strict source route kinds (refused, as most routers do).
const LSRR: u8 = 131;
const SSRR: u8 = 137;

/// An IPv4 option-processing instance.
#[derive(Default)]
pub struct Ipv4OptsInstance {
    seen: Mutex<HashMap<u8, u64>>,
    dropped: Mutex<u64>,
}

impl Ipv4OptsInstance {
    /// Times an option kind was seen.
    pub fn seen(&self, kind: u8) -> u64 {
        *self.seen.lock().get(&kind).unwrap_or(&0)
    }

    /// Packets dropped (malformed options or source routing).
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }
}

impl PluginInstance for Ipv4OptsInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        let Ok(pkt) = Ipv4Packet::new_checked(mbuf.data()) else {
            return PluginAction::Continue; // not IPv4: out of scope
        };
        if pkt.header_len() == 20 {
            return PluginAction::Continue; // no options
        }
        let mut seen = self.seen.lock();
        for opt in OptionIter::from_slice(pkt.options()) {
            let Ok(opt) = opt else {
                *self.dropped.lock() += 1;
                return PluginAction::Drop;
            };
            if opt.kind == OptionKind::NOP {
                continue;
            }
            *seen.entry(opt.kind.0).or_insert(0) += 1;
            if opt.kind.0 == LSRR || opt.kind.0 == SSRR {
                *self.dropped.lock() += 1;
                return PluginAction::Drop;
            }
        }
        PluginAction::Continue
    }

    fn describe(&self) -> String {
        format!(
            "opt4: {} option kinds seen, {} dropped",
            self.seen.lock().len(),
            self.dropped()
        )
    }
}

/// The IPv4-options plugin module.
#[derive(Default)]
pub struct Ipv4OptsPlugin {
    _priv: (),
}

impl Plugin for Ipv4OptsPlugin {
    fn name(&self) -> &str {
        "opt4"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::IPV6_OPTS, 2)
    }

    fn create_instance(&mut self, _config: &str) -> Result<InstanceRef, PluginError> {
        Ok(Arc::new(Ipv4OptsInstance::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::builder::PacketSpec;
    use rp_packet::mbuf::FlowIndex;
    use std::net::IpAddr;

    fn v4(d: u8) -> IpAddr {
        format!("10.0.0.{d}").parse().unwrap()
    }

    fn call(inst: &Ipv4OptsInstance, buf: Vec<u8>) -> PluginAction {
        let mut m = Mbuf::new(buf, 0);
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Ipv6Options,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        inst.handle_packet(&mut m, &mut ctx)
    }

    #[test]
    fn router_alert_counted() {
        let inst = Ipv4OptsInstance::default();
        let buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 16)
            .with_v4_option(OptionKind::ROUTER_ALERT.0, vec![0, 0])
            .build();
        assert_eq!(call(&inst, buf), PluginAction::Continue);
        assert_eq!(inst.seen(OptionKind::ROUTER_ALERT.0), 1);
    }

    #[test]
    fn source_routing_refused() {
        let inst = Ipv4OptsInstance::default();
        let buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 16)
            .with_v4_option(LSRR, vec![4, 0, 0, 0, 0])
            .build();
        assert_eq!(call(&inst, buf), PluginAction::Drop);
        assert_eq!(inst.dropped(), 1);
    }

    #[test]
    fn no_options_is_noop() {
        let inst = Ipv4OptsInstance::default();
        let buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 16).build();
        assert_eq!(call(&inst, buf), PluginAction::Continue);
        assert!(inst.describe().contains("0 option kinds"));
    }
}
