//! Packet-scheduling plugins: weighted DRR (the paper's own plugin, §6.1),
//! H-FSC (the CMU port, §6), FIFO (best-effort baseline) and RED (the
//! "envisioned" congestion-control plugin).
//!
//! A scheduling instance *consumes* packets at the Scheduling gate (the
//! gate returns [`PluginAction::Consumed`]) and the interface driver
//! drains it through [`SchedulerInstance::dequeue`]. Per-flow queues in
//! the DRR plugin are keyed by the packet's flow index — exactly the
//! paper's trick of using the AIU's flow table as the scheduler's flow
//! state ("it was straightforward to add a queue per flow").

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType, SchedulerInstance,
};
use crate::plugins::{config_map, config_num};
use parking_lot::Mutex;
use rp_classifier::FilterId;
use rp_packet::{FlowTuple, Mbuf};
use rp_sched::hfsc::ClassId;
use rp_sched::link::{SchedPacket, Scheduler};
use rp_sched::{
    DrrScheduler, FifoScheduler, HfscScheduler, HsfScheduler, RedQueue, ServiceCurve,
    VirtualClockScheduler,
};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Cookie-addressed store for packets owned by a scheduler.
#[derive(Default)]
struct PacketStore {
    map: HashMap<u64, Mbuf>,
    next: u64,
}

impl PacketStore {
    fn put(&mut self, mbuf: Mbuf) -> u64 {
        let c = self.next;
        self.next += 1;
        self.map.insert(c, mbuf);
        c
    }

    fn take(&mut self, cookie: u64) -> Option<Mbuf> {
        self.map.remove(&cookie)
    }
}

/// Take ownership of the packet out of the gate's `&mut Mbuf`.
fn take_mbuf(mbuf: &mut Mbuf) -> Mbuf {
    let rx = mbuf.rx_if;
    std::mem::replace(mbuf, Mbuf::new(Vec::new(), rx))
}

// ---------------------------------------------------------------------
// DRR
// ---------------------------------------------------------------------

struct DrrInner {
    drr: DrrScheduler,
    store: PacketStore,
    /// Weight per installed filter (the plugin's per-filter hard state).
    filter_weights: HashMap<FilterId, u32>,
}

/// A weighted-DRR instance (one per interface, per the paper).
pub struct DrrInstance {
    inner: Mutex<DrrInner>,
}

impl PluginInstance for DrrInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let mut g = self.inner.lock();
        let flow = ctx.fix.0;
        if let Some(f) = ctx.filter {
            if let Some(w) = g.filter_weights.get(&f).copied() {
                g.drr.set_weight(flow, w);
            }
        }
        // Remember the flow id in soft state so eviction can purge.
        ctx.soft_state.get_or_insert_with(|| Box::new(flow));
        let owned = take_mbuf(mbuf);
        let len = owned.len() as u32;
        let cookie = g.store.put(owned);
        let ok = g.drr.enqueue(
            SchedPacket {
                flow,
                len,
                arrival_ns: ctx.now_ns,
                cookie,
            },
            ctx.now_ns,
        );
        if ok {
            PluginAction::Consumed
        } else {
            g.store.take(cookie);
            PluginAction::Drop
        }
    }

    fn flow_unbound(&self, _key: &FlowTuple, soft_state: Option<Box<dyn Any + Send>>) {
        if let Some(flow) = soft_state.and_then(|b| b.downcast::<u32>().ok()) {
            let mut g = self.inner.lock();
            for pkt in g.drr.purge_flow(*flow) {
                g.store.take(pkt.cookie);
            }
        }
    }

    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        Some(self)
    }

    fn describe(&self) -> String {
        let g = self.inner.lock();
        format!(
            "drr: backlog={} active_flows={} drops={}",
            g.drr.backlog(),
            g.drr.active_flows(),
            g.drr.drops()
        )
    }
}

impl SchedulerInstance for DrrInstance {
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf> {
        let mut g = self.inner.lock();
        let pkt = g.drr.dequeue(now_ns)?;
        g.store.take(pkt.cookie)
    }

    fn backlog(&self) -> usize {
        self.inner.lock().drr.backlog()
    }
}

/// The DRR plugin module. Keeps typed handles to its instances so
/// plugin-specific messages can reach their internals.
#[derive(Default)]
pub struct DrrPlugin {
    instances: Vec<Arc<DrrInstance>>,
}

impl Plugin for DrrPlugin {
    fn name(&self) -> &str {
        "drr"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::PACKET_SCHED, 1)
    }

    /// Config: `quantum=<bytes> limit=<pkts-per-flow>`.
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let quantum: u32 = config_num(&map, "quantum", 9180)?;
        let limit: usize = config_num(&map, "limit", 128)?;
        if quantum == 0 {
            return Err(PluginError::BadConfig("quantum must be > 0".into()));
        }
        let inst = Arc::new(DrrInstance {
            inner: Mutex::new(DrrInner {
                drr: DrrScheduler::new(quantum, limit),
                store: PacketStore::default(),
                filter_weights: HashMap::new(),
            }),
        });
        self.instances.push(inst.clone());
        Ok(inst)
    }

    fn free_instance(&mut self, instance: &InstanceRef) {
        self.instances
            .retain(|i| !Arc::ptr_eq(&(i.clone() as InstanceRef), instance));
    }

    /// Messages: `setweight filter=<id> weight=<w>` (bandwidth
    /// reservation — §6.1's dynamically recalculated weights), `stats`.
    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        args: &str,
    ) -> Result<String, PluginError> {
        let inst =
            instance.ok_or_else(|| PluginError::BadConfig("message needs an instance".into()))?;
        let drr = self
            .instances
            .iter()
            .find(|i| Arc::ptr_eq(&((*i).clone() as InstanceRef), inst))
            .ok_or_else(|| PluginError::BadConfig("not a drr instance".into()))?
            .clone();
        match name {
            "setweight" => {
                let map = config_map(args);
                let fid: u64 = config_num(&map, "filter", u64::MAX)?;
                let w: u32 = config_num(&map, "weight", 0)?;
                if fid == u64::MAX || w == 0 {
                    return Err(PluginError::BadConfig(
                        "setweight filter=<id> weight=<w>".into(),
                    ));
                }
                drr.inner.lock().filter_weights.insert(FilterId(fid), w);
                Ok(format!("filter {fid} weight {w}"))
            }
            "stats" => Ok(inst.describe()),
            other => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

// ---------------------------------------------------------------------
// H-FSC
// ---------------------------------------------------------------------

struct HfscInner {
    hfsc: HfscScheduler,
    store: PacketStore,
    filter_class: HashMap<FilterId, ClassId>,
    default_class: Option<ClassId>,
}

/// An H-FSC instance (one per interface).
pub struct HfscInstance {
    inner: Mutex<HfscInner>,
}

impl PluginInstance for HfscInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let mut g = self.inner.lock();
        let flow = ctx.fix.0;
        // Route the flow to its class: filter binding, else default.
        let class = ctx
            .filter
            .and_then(|f| g.filter_class.get(&f).copied())
            .or(g.default_class);
        let Some(class) = class else {
            return PluginAction::Drop;
        };
        g.hfsc.bind_flow(flow, class);
        let owned = take_mbuf(mbuf);
        let len = owned.len() as u32;
        let cookie = g.store.put(owned);
        let ok = g.hfsc.enqueue(
            SchedPacket {
                flow,
                len,
                arrival_ns: ctx.now_ns,
                cookie,
            },
            ctx.now_ns,
        );
        if ok {
            PluginAction::Consumed
        } else {
            g.store.take(cookie);
            PluginAction::Drop
        }
    }

    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        Some(self)
    }

    fn describe(&self) -> String {
        let g = self.inner.lock();
        format!(
            "hfsc: backlog={} rt_served={} ls_served={} drops={}",
            g.hfsc.backlog(),
            g.hfsc.rt_served,
            g.hfsc.ls_served,
            g.hfsc.drops()
        )
    }
}

impl SchedulerInstance for HfscInstance {
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf> {
        let mut g = self.inner.lock();
        let pkt = g.hfsc.dequeue(now_ns)?;
        g.store.take(pkt.cookie)
    }

    fn backlog(&self) -> usize {
        self.inner.lock().hfsc.backlog()
    }
}

/// The H-FSC plugin module. Keeps typed handles to its instances so
/// plugin-specific messages (class tree construction) can reach them.
#[derive(Default)]
pub struct HfscPlugin {
    instances: Vec<Arc<HfscInstance>>,
}

impl Plugin for HfscPlugin {
    fn name(&self) -> &str {
        "hfsc"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::PACKET_SCHED, 2)
    }

    /// Config: `rate=<bps> limit=<pkts-per-class>`.
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let rate: u64 = config_num(&map, "rate", 10_000_000)?;
        let limit: usize = config_num(&map, "limit", 256)?;
        let inst = Arc::new(HfscInstance {
            inner: Mutex::new(HfscInner {
                hfsc: HfscScheduler::new(rate, limit),
                store: PacketStore::default(),
                filter_class: HashMap::new(),
                default_class: None,
            }),
        });
        self.instances.push(inst.clone());
        Ok(inst)
    }

    fn free_instance(&mut self, instance: &InstanceRef) {
        self.instances
            .retain(|i| !Arc::ptr_eq(&(i.clone() as InstanceRef), instance));
    }

    /// Messages:
    /// * `addclass parent=<id|root> ls=<bps> [m1=<bps> d=<us> m2=<bps>]`
    ///   → `class <id>`; a real-time curve is attached when m2 is given.
    /// * `bindfilter filter=<fid> class=<cid>`
    /// * `default class=<cid>`
    /// * `stats`
    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        args: &str,
    ) -> Result<String, PluginError> {
        let inst =
            instance.ok_or_else(|| PluginError::BadConfig("message needs an instance".into()))?;
        let typed = self
            .instances
            .iter()
            .find(|i| Arc::ptr_eq(&((*i).clone() as InstanceRef), inst))
            .ok_or_else(|| PluginError::BadConfig("not an hfsc instance".into()))?
            .clone();
        let mut g = typed.inner.lock();
        let map = config_map(args);
        match name {
            "addclass" => {
                let parent = match map.get("parent").map(String::as_str) {
                    None | Some("root") => g.hfsc.root(),
                    Some(p) => ClassId(
                        p.parse()
                            .map_err(|_| PluginError::BadConfig(format!("bad parent {p}")))?,
                    ),
                };
                let ls: u64 = config_num(&map, "ls", 0)?;
                let rt = if map.contains_key("m2") {
                    let m2: u64 = config_num(&map, "m2", 0)?;
                    let m1: u64 = config_num(&map, "m1", m2)?;
                    let d_us: u64 = config_num(&map, "d", 0)?;
                    Some(ServiceCurve {
                        m1_bps: m1,
                        d_us,
                        m2_bps: m2,
                    })
                } else {
                    None
                };
                let id = g.hfsc.add_class(parent, ls, rt);
                Ok(format!("class {}", id.0))
            }
            "bindfilter" => {
                let fid: u64 = config_num(&map, "filter", u64::MAX)?;
                let cid: u32 = config_num(&map, "class", u32::MAX)?;
                if fid == u64::MAX || cid == u32::MAX {
                    return Err(PluginError::BadConfig(
                        "bindfilter filter=<fid> class=<cid>".into(),
                    ));
                }
                g.filter_class.insert(FilterId(fid), ClassId(cid));
                Ok(format!("filter {fid} → class {cid}"))
            }
            "default" => {
                let cid: u32 = config_num(&map, "class", u32::MAX)?;
                if cid == u32::MAX {
                    return Err(PluginError::BadConfig("default class=<cid>".into()));
                }
                g.default_class = Some(ClassId(cid));
                g.hfsc.set_default_class(ClassId(cid));
                Ok(format!("default class {cid}"))
            }
            "stats" => Ok(typed.describe()),
            other => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

// ---------------------------------------------------------------------
// HSF (Hierarchical Scheduling Framework — the paper's §6 plan)
// ---------------------------------------------------------------------

struct HsfInner {
    hsf: HsfScheduler,
    store: PacketStore,
    filter_leaf: HashMap<FilterId, ClassId>,
    filter_weight: HashMap<FilterId, u32>,
}

/// An HSF instance: H-FSC across leaves, weighted DRR within each leaf —
/// "DRR could be used to do fair queuing for all flows ending in the
/// same H-FSC leaf node" (paper §6).
///
/// Flow-cache eviction deliberately does *not* purge queued packets
/// here: the outer H-FSC's per-leaf byte accounting mirrors the inner
/// DRR exactly, so dropping inner packets would desynchronise the two.
/// Residual packets of an evicted flow drain at their leaf's rate; a
/// reused flow index is re-bound on its first packet.
pub struct HsfInstance {
    inner: Mutex<HsfInner>,
}

impl PluginInstance for HsfInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let mut g = self.inner.lock();
        let flow = ctx.fix.0;
        if let Some(f) = ctx.filter {
            if let Some(leaf) = g.filter_leaf.get(&f).copied() {
                g.hsf.bind_flow(flow, leaf);
            }
            if let Some(w) = g.filter_weight.get(&f).copied() {
                g.hsf.set_flow_weight(flow, w);
            }
        }
        let owned = take_mbuf(mbuf);
        let len = owned.len() as u32;
        let cookie = g.store.put(owned);
        let ok = g.hsf.enqueue(
            SchedPacket {
                flow,
                len,
                arrival_ns: ctx.now_ns,
                cookie,
            },
            ctx.now_ns,
        );
        if ok {
            PluginAction::Consumed
        } else {
            g.store.take(cookie);
            PluginAction::Drop
        }
    }

    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        Some(self)
    }

    fn describe(&self) -> String {
        let g = self.inner.lock();
        format!("hsf: backlog={}", g.hsf.backlog())
    }
}

impl SchedulerInstance for HsfInstance {
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf> {
        let mut g = self.inner.lock();
        let pkt = g.hsf.dequeue(now_ns)?;
        g.store.take(pkt.cookie)
    }

    fn backlog(&self) -> usize {
        self.inner.lock().hsf.backlog()
    }
}

/// The HSF plugin module.
#[derive(Default)]
pub struct HsfPlugin {
    instances: Vec<Arc<HsfInstance>>,
}

impl Plugin for HsfPlugin {
    fn name(&self) -> &str {
        "hsf"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::PACKET_SCHED, 4)
    }

    /// Config: `rate=<bps> quantum=<bytes> limit=<pkts-per-flow>`.
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let rate: u64 = config_num(&map, "rate", 10_000_000)?;
        let quantum: u32 = config_num(&map, "quantum", 9180)?;
        let limit: usize = config_num(&map, "limit", 128)?;
        let inst = Arc::new(HsfInstance {
            inner: Mutex::new(HsfInner {
                hsf: HsfScheduler::new(rate, quantum, limit),
                store: PacketStore::default(),
                filter_leaf: HashMap::new(),
                filter_weight: HashMap::new(),
            }),
        });
        self.instances.push(inst.clone());
        Ok(inst)
    }

    fn free_instance(&mut self, instance: &InstanceRef) {
        self.instances
            .retain(|i| !Arc::ptr_eq(&(i.clone() as InstanceRef), instance));
    }

    /// Messages:
    /// * `addinterior parent=<id|root> ls=<bps>` → `class <id>`
    /// * `addleaf parent=<id|root> ls=<bps> [m1= d= m2=]` → `class <id>`
    /// * `bindfilter filter=<fid> class=<leaf>`
    /// * `setweight filter=<fid> weight=<w>` (intra-leaf DRR weight)
    /// * `default class=<leaf>`
    /// * `stats`
    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        args: &str,
    ) -> Result<String, PluginError> {
        let inst =
            instance.ok_or_else(|| PluginError::BadConfig("message needs an instance".into()))?;
        let typed = self
            .instances
            .iter()
            .find(|i| Arc::ptr_eq(&((*i).clone() as InstanceRef), inst))
            .ok_or_else(|| PluginError::BadConfig("not an hsf instance".into()))?
            .clone();
        let mut g = typed.inner.lock();
        let map = config_map(args);
        let parent = |g: &HsfInner| -> Result<ClassId, PluginError> {
            match map.get("parent").map(String::as_str) {
                None | Some("root") => Ok(g.hsf.root()),
                Some(p) => {
                    Ok(ClassId(p.parse().map_err(|_| {
                        PluginError::BadConfig(format!("bad parent {p}"))
                    })?))
                }
            }
        };
        match name {
            "addinterior" => {
                let p = parent(&g)?;
                let ls: u64 = config_num(&map, "ls", 0)?;
                let id = g.hsf.add_interior(p, ls);
                Ok(format!("class {}", id.0))
            }
            "addleaf" => {
                let p = parent(&g)?;
                let ls: u64 = config_num(&map, "ls", 0)?;
                let rt = if map.contains_key("m2") {
                    let m2: u64 = config_num(&map, "m2", 0)?;
                    let m1: u64 = config_num(&map, "m1", m2)?;
                    let d_us: u64 = config_num(&map, "d", 0)?;
                    Some(ServiceCurve {
                        m1_bps: m1,
                        d_us,
                        m2_bps: m2,
                    })
                } else {
                    None
                };
                let id = g.hsf.add_leaf(p, ls, rt);
                Ok(format!("class {}", id.0))
            }
            "bindfilter" => {
                let fid: u64 = config_num(&map, "filter", u64::MAX)?;
                let cid: u32 = config_num(&map, "class", u32::MAX)?;
                if fid == u64::MAX || cid == u32::MAX {
                    return Err(PluginError::BadConfig(
                        "bindfilter filter=<fid> class=<leaf>".into(),
                    ));
                }
                g.filter_leaf.insert(FilterId(fid), ClassId(cid));
                Ok(format!("filter {fid} → leaf {cid}"))
            }
            "setweight" => {
                let fid: u64 = config_num(&map, "filter", u64::MAX)?;
                let w: u32 = config_num(&map, "weight", 0)?;
                if fid == u64::MAX || w == 0 {
                    return Err(PluginError::BadConfig(
                        "setweight filter=<fid> weight=<w>".into(),
                    ));
                }
                g.filter_weight.insert(FilterId(fid), w);
                Ok(format!("filter {fid} weight {w}"))
            }
            "default" => {
                let cid: u32 = config_num(&map, "class", u32::MAX)?;
                if cid == u32::MAX {
                    return Err(PluginError::BadConfig("default class=<leaf>".into()));
                }
                g.hsf.set_default_leaf(ClassId(cid));
                Ok(format!("default leaf {cid}"))
            }
            "stats" => Ok(typed.describe()),
            other => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

// ---------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------

struct FifoInner {
    fifo: FifoScheduler,
    store: PacketStore,
}

/// A FIFO instance (the default best-effort egress queue).
pub struct FifoInstance {
    inner: Mutex<FifoInner>,
}

impl PluginInstance for FifoInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let mut g = self.inner.lock();
        let owned = take_mbuf(mbuf);
        let len = owned.len() as u32;
        let cookie = g.store.put(owned);
        let ok = g.fifo.enqueue(
            SchedPacket {
                flow: ctx.fix.0,
                len,
                arrival_ns: ctx.now_ns,
                cookie,
            },
            ctx.now_ns,
        );
        if ok {
            PluginAction::Consumed
        } else {
            g.store.take(cookie);
            PluginAction::Drop
        }
    }

    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        Some(self)
    }

    fn describe(&self) -> String {
        let g = self.inner.lock();
        format!(
            "fifo: backlog={} drops={}",
            g.fifo.backlog(),
            g.fifo.drops()
        )
    }
}

impl SchedulerInstance for FifoInstance {
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf> {
        let mut g = self.inner.lock();
        let pkt = g.fifo.dequeue(now_ns)?;
        g.store.take(pkt.cookie)
    }

    fn backlog(&self) -> usize {
        self.inner.lock().fifo.backlog()
    }
}

/// The FIFO plugin module.
#[derive(Default)]
pub struct FifoPlugin {
    _priv: (),
}

impl Plugin for FifoPlugin {
    fn name(&self) -> &str {
        "fifo"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::PACKET_SCHED, 3)
    }

    /// Config: `limit=<pkts>`.
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let limit: usize = config_num(&map, "limit", 512)?;
        Ok(Arc::new(FifoInstance {
            inner: Mutex::new(FifoInner {
                fifo: FifoScheduler::new(limit),
                store: PacketStore::default(),
            }),
        }))
    }
}

// ---------------------------------------------------------------------
// RED
// ---------------------------------------------------------------------

struct RedInner {
    red: RedQueue,
    store: PacketStore,
}

/// A RED instance (congestion-controlled egress queue).
pub struct RedInstance {
    inner: Mutex<RedInner>,
}

impl PluginInstance for RedInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let mut g = self.inner.lock();
        let owned = take_mbuf(mbuf);
        let len = owned.len() as u32;
        let cookie = g.store.put(owned);
        let ok = g.red.enqueue(
            SchedPacket {
                flow: ctx.fix.0,
                len,
                arrival_ns: ctx.now_ns,
                cookie,
            },
            ctx.now_ns,
        );
        if ok {
            PluginAction::Consumed
        } else {
            g.store.take(cookie);
            PluginAction::Drop
        }
    }

    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        Some(self)
    }

    fn describe(&self) -> String {
        let g = self.inner.lock();
        format!(
            "red: backlog={} avg={:.2} early_drops={} forced_drops={}",
            g.red.backlog(),
            g.red.avg_queue(),
            g.red.early_drops(),
            g.red.forced_drops()
        )
    }
}

impl SchedulerInstance for RedInstance {
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf> {
        let mut g = self.inner.lock();
        let pkt = g.red.dequeue(now_ns)?;
        g.store.take(pkt.cookie)
    }

    fn backlog(&self) -> usize {
        self.inner.lock().red.backlog()
    }
}

/// The RED plugin module.
#[derive(Default)]
pub struct RedPlugin {
    _priv: (),
}

impl Plugin for RedPlugin {
    fn name(&self) -> &str {
        "red"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::CONGESTION, 1)
    }

    /// Config: `minth= maxth= maxp= limit= wq= seed=` (all optional).
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let cfg = rp_sched::red::RedConfig {
            w_q: config_num(&map, "wq", 0.002f64)?,
            min_th: config_num(&map, "minth", 5.0f64)?,
            max_th: config_num(&map, "maxth", 15.0f64)?,
            max_p: config_num(&map, "maxp", 0.1f64)?,
            limit: config_num(&map, "limit", 64usize)?,
            mean_pkt_time_ns: config_num(&map, "mean_pkt_ns", 10_000u64)?,
        };
        if cfg.min_th >= cfg.max_th {
            return Err(PluginError::BadConfig("minth must be < maxth".into()));
        }
        let seed: u64 = config_num(&map, "seed", 0x5eed)?;
        Ok(Arc::new(RedInstance {
            inner: Mutex::new(RedInner {
                red: RedQueue::new(cfg, seed),
                store: PacketStore::default(),
            }),
        }))
    }
}

// ---------------------------------------------------------------------
// Virtual Clock (the "third-party" plugin the paper predicts)
// ---------------------------------------------------------------------

struct VcInner {
    vc: VirtualClockScheduler,
    store: PacketStore,
    filter_rates: HashMap<FilterId, u64>,
}

/// A Virtual Clock instance: per-flow rate policing by stamp ordering.
pub struct VcInstance {
    inner: Mutex<VcInner>,
}

impl PluginInstance for VcInstance {
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction {
        let mut g = self.inner.lock();
        let flow = ctx.fix.0;
        if let Some(f) = ctx.filter {
            if let Some(rate) = g.filter_rates.get(&f).copied() {
                g.vc.set_rate(flow, rate);
            }
        }
        let owned = take_mbuf(mbuf);
        let len = owned.len() as u32;
        let cookie = g.store.put(owned);
        let ok = g.vc.enqueue(
            SchedPacket {
                flow,
                len,
                arrival_ns: ctx.now_ns,
                cookie,
            },
            ctx.now_ns,
        );
        if ok {
            PluginAction::Consumed
        } else {
            g.store.take(cookie);
            PluginAction::Drop
        }
    }

    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        Some(self)
    }

    fn describe(&self) -> String {
        let g = self.inner.lock();
        format!("vclock: backlog={} drops={}", g.vc.backlog(), g.vc.drops())
    }
}

impl SchedulerInstance for VcInstance {
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf> {
        let mut g = self.inner.lock();
        let pkt = g.vc.dequeue(now_ns)?;
        g.store.take(pkt.cookie)
    }

    fn backlog(&self) -> usize {
        self.inner.lock().vc.backlog()
    }
}

/// The Virtual Clock plugin module.
#[derive(Default)]
pub struct VcPlugin {
    instances: Vec<Arc<VcInstance>>,
}

impl Plugin for VcPlugin {
    fn name(&self) -> &str {
        "vclock"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::PACKET_SCHED, 5)
    }

    /// Config: `rate=<bps> limit=<pkts>` (default per-flow rate).
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let rate: u64 = config_num(&map, "rate", 1_000_000)?;
        let limit: usize = config_num(&map, "limit", 512)?;
        if rate == 0 {
            return Err(PluginError::BadConfig("rate must be > 0".into()));
        }
        let inst = Arc::new(VcInstance {
            inner: Mutex::new(VcInner {
                vc: VirtualClockScheduler::new(rate, limit),
                store: PacketStore::default(),
                filter_rates: HashMap::new(),
            }),
        });
        self.instances.push(inst.clone());
        Ok(inst)
    }

    fn free_instance(&mut self, instance: &InstanceRef) {
        self.instances
            .retain(|i| !Arc::ptr_eq(&(i.clone() as InstanceRef), instance));
    }

    /// Messages: `setrate filter=<fid> rate=<bps>`, `stats`.
    fn custom_message(
        &mut self,
        instance: Option<&InstanceRef>,
        name: &str,
        args: &str,
    ) -> Result<String, PluginError> {
        let inst =
            instance.ok_or_else(|| PluginError::BadConfig("message needs an instance".into()))?;
        let typed = self
            .instances
            .iter()
            .find(|i| Arc::ptr_eq(&((*i).clone() as InstanceRef), inst))
            .ok_or_else(|| PluginError::BadConfig("not a vclock instance".into()))?
            .clone();
        match name {
            "setrate" => {
                let map = config_map(args);
                let fid: u64 = config_num(&map, "filter", u64::MAX)?;
                let rate: u64 = config_num(&map, "rate", 0)?;
                if fid == u64::MAX || rate == 0 {
                    return Err(PluginError::BadConfig(
                        "setrate filter=<fid> rate=<bps>".into(),
                    ));
                }
                typed.inner.lock().filter_rates.insert(FilterId(fid), rate);
                Ok(format!("filter {fid} rate {rate}"))
            }
            "stats" => Ok(typed.describe()),
            other => Err(PluginError::UnknownMessage(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::mbuf::FlowIndex;

    fn call(inst: &InstanceRef, fix: u32, len: usize, now: u64) -> PluginAction {
        let mut m = Mbuf::new(vec![0u8; len], 0);
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Scheduling,
            now_ns: now,
            fix: FlowIndex(fix),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        inst.handle_packet(&mut m, &mut ctx)
    }

    #[test]
    fn fifo_consume_and_drain() {
        let mut p = FifoPlugin::default();
        let inst = p.create_instance("limit=4").unwrap();
        assert_eq!(call(&inst, 1, 100, 0), PluginAction::Consumed);
        assert_eq!(call(&inst, 2, 200, 0), PluginAction::Consumed);
        let sched = inst.as_scheduler().unwrap();
        assert_eq!(sched.backlog(), 2);
        assert_eq!(sched.dequeue(0).unwrap().len(), 100);
        assert_eq!(sched.dequeue(0).unwrap().len(), 200);
        assert!(sched.dequeue(0).is_none());
    }

    #[test]
    fn fifo_overflow_drops() {
        let mut p = FifoPlugin::default();
        let inst = p.create_instance("limit=1").unwrap();
        assert_eq!(call(&inst, 1, 100, 0), PluginAction::Consumed);
        assert_eq!(call(&inst, 1, 100, 0), PluginAction::Drop);
    }

    #[test]
    fn drr_round_robins_flows() {
        let mut p = DrrPlugin::default();
        let inst = p.create_instance("quantum=1000 limit=16").unwrap();
        for _ in 0..3 {
            call(&inst, 1, 500, 0);
            call(&inst, 2, 500, 0);
        }
        let sched = inst.as_scheduler().unwrap();
        let mut flows = Vec::new();
        while let Some(m) = sched.dequeue(0) {
            flows.push(m.len());
        }
        assert_eq!(flows.len(), 6);
    }

    #[test]
    fn hfsc_plugin_classes_via_messages() {
        let mut p = HfscPlugin::default();
        let inst = p.create_instance("rate=10000000 limit=64").unwrap();
        let reply = p
            .custom_message(Some(&inst), "addclass", "parent=root ls=5000000")
            .unwrap();
        assert_eq!(reply, "class 1");
        p.custom_message(Some(&inst), "default", "class=1").unwrap();
        assert_eq!(call(&inst, 7, 400, 0), PluginAction::Consumed);
        let sched = inst.as_scheduler().unwrap();
        assert_eq!(sched.dequeue(1000).unwrap().len(), 400);
    }

    #[test]
    fn hfsc_without_class_drops() {
        let mut p = HfscPlugin::default();
        let inst = p.create_instance("").unwrap();
        assert_eq!(call(&inst, 7, 400, 0), PluginAction::Drop);
    }

    #[test]
    fn hsf_plugin_hierarchy_via_messages() {
        let mut p = HsfPlugin::default();
        let inst = p
            .create_instance("rate=10000000 quantum=1500 limit=32")
            .unwrap();
        let a = p
            .custom_message(Some(&inst), "addleaf", "parent=root ls=7000000")
            .unwrap();
        assert_eq!(a, "class 1");
        p.custom_message(Some(&inst), "default", "class=1").unwrap();
        assert_eq!(call(&inst, 5, 300, 0), PluginAction::Consumed);
        assert_eq!(call(&inst, 6, 300, 0), PluginAction::Consumed);
        let sched = inst.as_scheduler().unwrap();
        assert_eq!(sched.backlog(), 2);
        assert!(sched.dequeue(100).is_some());
        assert!(sched.dequeue(200).is_some());
        assert!(sched.dequeue(300).is_none());
        // Interior classes and leaf with a real-time curve parse too.
        let i = p
            .custom_message(Some(&inst), "addinterior", "parent=root ls=3000000")
            .unwrap();
        assert!(i.starts_with("class "));
        let leaf = p
            .custom_message(
                Some(&inst),
                "addleaf",
                "parent=2 ls=1000000 m1=2000000 d=10000 m2=500000",
            )
            .unwrap();
        assert!(leaf.starts_with("class "));
        // Bad messages rejected.
        assert!(p.custom_message(Some(&inst), "bindfilter", "").is_err());
        assert!(p.custom_message(Some(&inst), "bogus", "").is_err());
    }

    #[test]
    fn hsf_plugin_without_default_drops() {
        let mut p = HsfPlugin::default();
        let inst = p.create_instance("").unwrap();
        assert_eq!(call(&inst, 9, 100, 0), PluginAction::Drop);
    }

    #[test]
    fn vclock_plugin_orders_by_rate() {
        let mut p = VcPlugin::default();
        let inst = p.create_instance("rate=1000000 limit=64").unwrap();
        for i in 0..4 {
            assert_eq!(call(&inst, 1, 500, i), PluginAction::Consumed);
            assert_eq!(call(&inst, 2, 500, i), PluginAction::Consumed);
        }
        let sched = inst.as_scheduler().unwrap();
        let mut n = 0;
        while sched.dequeue(0).is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
        assert!(p
            .custom_message(Some(&inst), "setrate", "filter=1 rate=5000000")
            .is_ok());
        assert!(p.custom_message(Some(&inst), "setrate", "").is_err());
    }

    #[test]
    fn red_accepts_when_idle() {
        let mut p = RedPlugin::default();
        let inst = p.create_instance("").unwrap();
        assert_eq!(call(&inst, 1, 100, 0), PluginAction::Consumed);
        let sched = inst.as_scheduler().unwrap();
        assert!(sched.dequeue(0).is_some());
    }

    #[test]
    fn red_config_validation() {
        let mut p = RedPlugin::default();
        assert!(p.create_instance("minth=10 maxth=5").is_err());
    }
}
