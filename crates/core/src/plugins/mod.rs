//! Bundled plugins.
//!
//! The paper ships IPv6-option, IP-security, packet-scheduling and BMP
//! plugins and lists several "envisioned" types (§4): statistics
//! gathering, congestion control (RED), firewalling, routing. All of
//! those are implemented here as loadable modules for the
//! [`crate::loader::PluginLoader`]. (The BMP plugins live in `rp-lpm` and
//! are selected per DAG level through
//! [`rp_classifier::BmpKind`] — they plug into the classifier, not into a
//! gate.)

pub mod chaos;
pub mod firewall;
pub mod ipsec;
pub mod ipv4_opts;
pub mod ipv6_opts;
pub mod null;
pub mod routing;
pub mod sched;
pub mod stats;
pub mod tcp_monitor;

use crate::loader::PluginLoader;

/// Register every built-in plugin factory with a loader ("put the modules
/// on disk"). Individual plugins still need `load_plugin` to become live.
// Each name is registered exactly once into a caller-supplied loader, so
// a duplicate-name failure here is a compile-time-style programming error
// worth an immediate panic, not a recoverable condition.
#[allow(clippy::expect_used)]
pub fn register_builtin_factories(loader: &mut PluginLoader) {
    loader
        .add_factory("null", || Box::new(null::NullPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("stats", || Box::new(stats::StatsPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("firewall", || Box::new(firewall::FirewallPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("l4route", || Box::new(routing::RoutingPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("opt6", || Box::new(ipv6_opts::Ipv6OptsPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("ah", || Box::new(ipsec::AhPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("esp", || Box::new(ipsec::EspPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("drr", || Box::new(sched::DrrPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("hfsc", || Box::new(sched::HfscPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("fifo", || Box::new(sched::FifoPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("red", || Box::new(sched::RedPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("hsf", || Box::new(sched::HsfPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("opt4", || Box::new(ipv4_opts::Ipv4OptsPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("tcpmon", || {
            Box::new(tcp_monitor::TcpMonitorPlugin::default())
        })
        .expect("fresh loader");
    loader
        .add_factory("vclock", || Box::new(sched::VcPlugin::default()))
        .expect("fresh loader");
    loader
        .add_factory("chaos", || Box::new(chaos::ChaosPlugin::default()))
        .expect("fresh loader");
}

/// Parse `key=value` pairs from an instance-config string. Unknown keys
/// are the caller's problem; missing keys fall back to defaults.
pub(crate) fn config_map(config: &str) -> std::collections::HashMap<String, String> {
    config
        .split_whitespace()
        .filter_map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

/// Fetch a numeric config value with a default.
pub(crate) fn config_num<T: std::str::FromStr>(
    map: &std::collections::HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, crate::plugin::PluginError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| crate::plugin::PluginError::BadConfig(format!("bad {key}={v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_load() {
        let mut loader = PluginLoader::new();
        register_builtin_factories(&mut loader);
        let mut pcu = crate::pcu::Pcu::new();
        for name in loader.available() {
            loader.load(&name, &mut pcu).unwrap();
        }
        assert_eq!(loader.loaded().len(), 16);
    }

    #[test]
    fn config_parsing() {
        let m = config_map("quantum=1500 limit=64 name=x");
        assert_eq!(config_num(&m, "quantum", 0u32).unwrap(), 1500);
        assert_eq!(config_num(&m, "missing", 7u32).unwrap(), 7);
        assert!(config_num(&m, "name", 0u32).is_err());
    }
}
