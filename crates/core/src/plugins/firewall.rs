//! Firewall plugin — one of the paper's motivating applications (§2:
//! "security devices like Firewalls … quickly and efficiently classify
//! packets into flows, and apply different policies to different flows").
//!
//! Policy is expressed through the AIU: bind a `deny` instance to the
//! filters describing forbidden traffic and (optionally) an `allow`
//! instance to exception flows — the most-specific-match rule then gives
//! firewall semantics (specific allows punch holes in broad denies).

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use crate::plugins::config_map;
use rp_packet::Mbuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a firewall instance does with matched packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwAction {
    /// Let matched packets through.
    Allow,
    /// Drop matched packets.
    Deny,
}

/// A firewall instance.
pub struct FirewallInstance {
    action: FwAction,
    matched: AtomicU64,
}

impl FirewallInstance {
    /// Packets that hit this instance.
    pub fn matched(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }
}

impl PluginInstance for FirewallInstance {
    fn handle_packet(&self, _mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        self.matched.fetch_add(1, Ordering::Relaxed);
        match self.action {
            FwAction::Allow => PluginAction::Continue,
            FwAction::Deny => PluginAction::Drop,
        }
    }

    fn describe(&self) -> String {
        format!("firewall {:?}: {} matched", self.action, self.matched())
    }
}

/// The firewall plugin module.
#[derive(Default)]
pub struct FirewallPlugin {
    _priv: (),
}

impl Plugin for FirewallPlugin {
    fn name(&self) -> &str {
        "firewall"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::FIREWALL, 1)
    }

    /// Config: `action=allow|deny` (default deny).
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
        let map = config_map(config);
        let action = match map.get("action").map(String::as_str) {
            None | Some("deny") => FwAction::Deny,
            Some("allow") => FwAction::Allow,
            Some(other) => {
                return Err(PluginError::BadConfig(format!("action={other}")));
            }
        };
        Ok(Arc::new(FirewallInstance {
            action,
            matched: AtomicU64::new(0),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::mbuf::FlowIndex;

    fn call(inst: &InstanceRef) -> PluginAction {
        let mut m = Mbuf::new(vec![0u8; 20], 0);
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Firewall,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        inst.handle_packet(&mut m, &mut ctx)
    }

    #[test]
    fn deny_drops_allow_continues() {
        let mut p = FirewallPlugin::default();
        let deny = p.create_instance("action=deny").unwrap();
        let allow = p.create_instance("action=allow").unwrap();
        let default = p.create_instance("").unwrap();
        assert_eq!(call(&deny), PluginAction::Drop);
        assert_eq!(call(&allow), PluginAction::Continue);
        assert_eq!(call(&default), PluginAction::Drop);
        assert!(deny.describe().contains("1 matched"));
    }

    #[test]
    fn bad_action_rejected() {
        let mut p = FirewallPlugin::default();
        assert!(matches!(
            p.create_instance("action=explode"),
            Err(PluginError::BadConfig(_))
        ));
    }
}
