//! RSS-style ingress dispatch: every packet is steered to a shard by a
//! hash of its flow five-tuple, so all packets of one flow land on the
//! same shard — preserving the flow-cache affinity, per-flow soft state,
//! and per-flow packet order the paper's architecture depends on, without
//! any cross-shard locking.
//!
//! The hash is the flow table's own [`flow_hash`] (the paper's cheap
//! "17-cycle" five-tuple fold), so dispatch costs the same as one flow
//! cache probe and spreads exactly as well as the cache itself.

use rp_classifier::flow_table::flow_hash;
use rp_packet::{FlowTuple, Mbuf};

/// The shard a fully-specified flow belongs to.
#[inline]
pub fn shard_for_tuple(tuple: &FlowTuple, shards: usize) -> usize {
    debug_assert!(shards > 0, "dispatch needs at least one shard");
    (flow_hash(tuple) as usize) % shards.max(1)
}

/// The shard a packet is dispatched to. Packets whose five-tuple cannot
/// be extracted (malformed, unknown transport) all go to shard 0: they
/// carry no flow state, and concentrating them keeps the error path
/// deterministic.
#[inline]
pub fn shard_for_packet(mbuf: &Mbuf, shards: usize) -> usize {
    match FlowTuple::from_mbuf(mbuf) {
        Ok(t) => shard_for_tuple(&t, shards),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv6Addr};

    fn tuple(n: u16, sport: u16) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n)),
            dst: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x900)),
            proto: 17,
            sport,
            dport: 80,
            rx_if: 0,
        }
    }

    #[test]
    fn stable_and_in_range() {
        for n in 0..100 {
            let t = tuple(n, 1000 + n);
            for shards in [1usize, 2, 4, 8] {
                let s = shard_for_tuple(&t, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_tuple(&t, shards), "dispatch must be stable");
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for n in 0..50 {
            assert_eq!(shard_for_tuple(&tuple(n, 5000), 1), 0);
        }
    }

    #[test]
    fn malformed_packets_go_to_shard_zero() {
        let m = Mbuf::new(vec![0u8; 4], 0);
        assert_eq!(shard_for_packet(&m, 8), 0);
    }
}
