//! RSS-style ingress dispatch: every packet is steered to a shard by a
//! hash of its flow five-tuple, so all packets of one flow land on the
//! same shard — preserving the flow-cache affinity, per-flow soft state,
//! and per-flow packet order the paper's architecture depends on, without
//! any cross-shard locking.
//!
//! The hash is the flow table's own [`flow_hash`] (the paper's cheap
//! "17-cycle" five-tuple fold), so dispatch costs the same as one flow
//! cache probe and spreads exactly as well as the cache itself.
//!
//! Pure hash placement balances only when flow sizes do: one elephant
//! flow pins its whole byte stream to one shard. [`FlowSteer`] layers a
//! load-aware placement on top — flows arriving while their hash-home
//! shard is hot are placed by power-of-two-choices and *pinned* so every
//! later packet follows the same decision (per-flow order is preserved
//! because a flow's shard is decided exactly once, before its first
//! packet is dispatched).

use rp_classifier::flow_table::flow_hash;
use rp_packet::{FlowTuple, Mbuf};

/// The shard a fully-specified flow belongs to. Multiply-shift range
/// reduction: unlike `hash % n`, this is unbiased across shards for any
/// `n` and costs one multiply instead of a hot-path divide.
#[inline]
pub fn shard_for_tuple(tuple: &FlowTuple, shards: usize) -> usize {
    debug_assert!(shards > 0, "dispatch needs at least one shard");
    ((flow_hash(tuple) as u64 * shards.max(1) as u64) >> 32) as usize
}

/// The shard a packet is dispatched to. Packets whose five-tuple cannot
/// be extracted (malformed, unknown transport) all go to shard 0: they
/// carry no flow state, and concentrating them keeps the error path
/// deterministic.
#[inline]
pub fn shard_for_packet(mbuf: &Mbuf, shards: usize) -> usize {
    match FlowTuple::from_mbuf(mbuf) {
        Ok(t) => shard_for_tuple(&t, shards),
        Err(_) => 0,
    }
}

/// Load-aware placement configuration (all decisions are deterministic —
/// no RNG, so two runs over the same packet sequence place identically).
#[derive(Debug, Clone, Copy)]
pub struct SteerConfig {
    /// Pin-table capacity (rounded up to a power of two). Bounds steer
    /// memory; when the table is full, new flows fall back to plain hash
    /// placement — which is always order-safe.
    pub pin_capacity: usize,
    /// Load window in packets: per-shard counters halve every time this
    /// many packets have been dispatched, so "hot" tracks the recent
    /// past, not all of history.
    pub window: u64,
    /// A shard is *hot* when its windowed load exceeds
    /// `hot_percent/100 × mean` — only then do newly arriving flows get
    /// power-of-two-choices placement instead of their hash home.
    pub hot_percent: u64,
    /// A flow whose windowed packet count crosses this threshold is
    /// counted as an elephant suspect (diagnostic only; placement is
    /// decided at flow birth).
    pub elephant_pkts: u64,
    /// Pin entries idle for this many dispatched packets may be
    /// reclaimed. An idle flow that resurges after reclaim re-enters
    /// placement as a new flow; its in-flight packets have long drained,
    /// so order within any busy period is unaffected.
    pub pin_idle: u64,
    /// A shard is also hot when its *observed ingress-queue depth*
    /// reaches `depth_hot_percent/100 × mean` of the sampled depths —
    /// the dispatch-window counts say where packets were sent, the queue
    /// depth says where they are piling up (a slow shard is hot even at
    /// fair dispatch share). Depths arrive via [`FlowSteer::set_depths`];
    /// with no samples the check is inert.
    pub depth_hot_percent: u64,
    /// Minimum sampled depth on a shard before the depth check may call
    /// it hot: a handful of in-flight messages is normal batching, not
    /// backlog.
    pub depth_floor: u64,
}

impl Default for SteerConfig {
    fn default() -> Self {
        SteerConfig {
            pin_capacity: 4096,
            window: 4096,
            hot_percent: 120,
            elephant_pkts: 256,
            pin_idle: 1 << 20,
            depth_hot_percent: 200,
            depth_floor: 16,
        }
    }
}

/// Steer statistics (diagnostics and bench gates).
#[derive(Debug, Clone, Copy, Default)]
pub struct SteerStats {
    /// Flows currently tracked in the pin table.
    pub tracked: usize,
    /// Flows pinned away from their hash home (P2C chose the alternate).
    pub steered: u64,
    /// Flows whose packet count crossed the elephant threshold.
    pub elephants: u64,
    /// Flows that could not be tracked (probe run full) and fell back to
    /// hash placement.
    pub untracked: u64,
    /// Idle pin entries reclaimed.
    pub reclaimed: u64,
}

#[derive(Clone)]
struct PinEntry {
    key: FlowTuple,
    shard: u32,
    pkts: u64,
    last_tick: u64,
    live: bool,
}

/// Linear-probe run length for the pin table: a flow is tracked only if
/// a slot exists within this many probes of its hash slot.
const PROBE_RUN: usize = 8;

/// The load-aware dispatcher. Owned by the parallel router's ingress
/// thread; everything is plain single-threaded state.
///
/// Ordering invariant: a flow's shard is decided at its *first* dispatch
/// and recorded in the pin table before that packet is forwarded; every
/// later packet reads the same entry. Flows that cannot be tracked
/// (table full) use hash placement from their first packet onward, which
/// is the same decision every time. A placement can therefore only
/// change across a pin-idle reclaim — i.e. after the flow has been
/// silent for [`SteerConfig::pin_idle`] dispatches.
pub struct FlowSteer {
    cfg: SteerConfig,
    shards: usize,
    pins: Vec<PinEntry>,
    mask: usize,
    /// Windowed per-shard packet counts (decayed by halving).
    load: Vec<u64>,
    window_total: u64,
    /// Last sampled ingress-queue depths (see [`FlowSteer::set_depths`]).
    depths: Vec<u64>,
    depth_total: u64,
    /// Monotone dispatch counter (drives pin-idle reclaim).
    tick: u64,
    stats: SteerStats,
}

impl FlowSteer {
    /// Build a steerer for `shards` shards.
    pub fn new(cfg: SteerConfig, shards: usize) -> Self {
        assert!(shards > 0, "steer needs at least one shard");
        let cap = cfg.pin_capacity.next_power_of_two().max(PROBE_RUN);
        FlowSteer {
            cfg,
            shards,
            pins: vec![
                PinEntry {
                    key: FlowTuple {
                        src: std::net::IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
                        dst: std::net::IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
                        proto: 0,
                        sport: 0,
                        dport: 0,
                        rx_if: 0,
                    },
                    shard: 0,
                    pkts: 0,
                    last_tick: 0,
                    live: false,
                };
                cap
            ],
            mask: cap - 1,
            load: vec![0; shards],
            window_total: 0,
            depths: vec![0; shards],
            depth_total: 0,
            tick: 0,
            stats: SteerStats::default(),
        }
    }

    /// Feed the latest observed per-shard ingress-queue depths (ring
    /// occupancy sampled by the dispatcher at watchdog cadence). The
    /// sample replaces the previous one: depth is a gauge, not a
    /// counter, and a shard that drained is no longer hot.
    pub fn set_depths(&mut self, depths: &[usize]) {
        for (slot, &d) in self.depths.iter_mut().zip(depths) {
            *slot = d as u64;
        }
        self.depth_total = self.depths.iter().sum();
    }

    /// Steer statistics snapshot.
    pub fn stats(&self) -> SteerStats {
        let mut s = self.stats;
        s.tracked = self.pins.iter().filter(|p| p.live).count();
        s
    }

    /// Decide the shard for one packet of `tuple`'s flow.
    pub fn steer(&mut self, tuple: &FlowTuple) -> usize {
        let h = flow_hash(tuple);
        let home = ((h as u64 * self.shards as u64) >> 32) as usize;
        let shard = match self.probe(tuple, h) {
            Probe::Hit(slot) => {
                let e = &mut self.pins[slot];
                e.pkts += 1;
                e.last_tick = self.tick;
                if e.pkts == self.cfg.elephant_pkts {
                    self.stats.elephants += 1;
                }
                e.shard as usize
            }
            Probe::Free(slot) => {
                // First sighting of this flow: decide its placement once,
                // before its first packet is dispatched.
                let chosen = self.place_new(h, home);
                let e = &mut self.pins[slot];
                e.key = *tuple;
                e.shard = chosen as u32;
                e.pkts = 1;
                e.last_tick = self.tick;
                e.live = true;
                if chosen != home {
                    self.stats.steered += 1;
                }
                chosen
            }
            Probe::Full => {
                // Untrackable: hash placement, the always-consistent
                // fallback (the same answer on every packet of the flow).
                self.stats.untracked += 1;
                home
            }
        };
        self.note_dispatch(shard);
        shard
    }

    /// P2C for a brand-new flow: if the home shard is not hot, stay home
    /// (mice never leave hash placement). Otherwise pick the less loaded
    /// of home and a second hash-derived candidate.
    fn place_new(&self, h: u32, home: usize) -> usize {
        if self.shards == 1 || !self.is_hot(home) {
            return home;
        }
        // Second candidate from an independent avalanche of the same
        // hash; nudge off home when they collide.
        let mut h2 = h ^ 0x9E37_79B9;
        h2 ^= h2 >> 16;
        h2 = h2.wrapping_mul(0x85EB_CA6B);
        h2 ^= h2 >> 13;
        let mut alt = ((h2 as u64 * self.shards as u64) >> 32) as usize;
        if alt == home {
            alt = (home + 1) % self.shards;
        }
        if self.load[alt] < self.load[home] {
            alt
        } else {
            home
        }
    }

    fn is_hot(&self, shard: usize) -> bool {
        // Observed backlog first: a shard whose ingress queue is deep is
        // hot no matter what the dispatch counts say (it may be slow, not
        // over-dispatched). The floor keeps normal batching depths from
        // tripping it; same integer-only percentage-of-mean form.
        // Inclusive comparison: with 2 shards the worst skew (all depth
        // on one shard) is exactly 200% of mean, which must count.
        if self.depths[shard] >= self.cfg.depth_floor
            && self.depths[shard] * self.shards as u64 * 100
                >= self.cfg.depth_hot_percent * self.depth_total
        {
            return true;
        }
        // A quarter-full window before anything may be called hot: with
        // a handful of packets counted, any shard that saw one would
        // clear a percentage threshold (cold-start noise, not load).
        if self.window_total < self.cfg.window / 4 {
            return false;
        }
        // hot ⇔ load[s] × n × 100 > hot_percent × total — integer-only.
        self.load[shard] * self.shards as u64 * 100 > self.cfg.hot_percent * self.window_total
    }

    fn note_dispatch(&mut self, shard: usize) {
        self.load[shard] += 1;
        self.window_total += 1;
        self.tick += 1;
        // Halve every `window` dispatches, as the config documents
        // (`window_total` tracks the decayed sum, so it cycles between
        // roughly window/2 and window at steady state).
        if self.window_total >= self.cfg.window {
            for l in &mut self.load {
                *l /= 2;
            }
            self.window_total = self.load.iter().sum();
        }
    }

    fn probe(&mut self, tuple: &FlowTuple, h: u32) -> Probe {
        let start = (h as usize) & self.mask;
        // Track dead slots and idle-reclaim candidates separately: a
        // live-but-idle pin is only evicted when the whole run holds
        // live entries, never while a genuinely dead slot exists later
        // in the run.
        let mut dead: Option<usize> = None;
        let mut reclaim: Option<usize> = None;
        for i in 0..PROBE_RUN {
            let slot = (start + i) & self.mask;
            let e = &self.pins[slot];
            if e.live {
                if e.key == *tuple {
                    return Probe::Hit(slot);
                }
                // Reclaimable? Only if idle for the full pin window.
                if reclaim.is_none() && self.tick.saturating_sub(e.last_tick) > self.cfg.pin_idle {
                    reclaim = Some(slot);
                }
            } else if dead.is_none() {
                dead = Some(slot);
            }
        }
        match dead.or(reclaim) {
            Some(slot) => {
                if self.pins[slot].live {
                    self.stats.reclaimed += 1;
                }
                Probe::Free(slot)
            }
            None => Probe::Full,
        }
    }
}

enum Probe {
    Hit(usize),
    Free(usize),
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv6Addr};

    fn tuple(n: u16, sport: u16) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n)),
            dst: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x900)),
            proto: 17,
            sport,
            dport: 80,
            rx_if: 0,
        }
    }

    #[test]
    fn stable_and_in_range() {
        for n in 0..100 {
            let t = tuple(n, 1000 + n);
            for shards in [1usize, 2, 4, 8] {
                let s = shard_for_tuple(&t, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_tuple(&t, shards), "dispatch must be stable");
            }
        }
    }

    #[test]
    fn multiply_shift_matches_definition() {
        for n in 0..200u16 {
            let t = tuple(n, 2000 + n);
            for shards in [1usize, 2, 3, 4, 5, 7, 8, 12] {
                assert_eq!(
                    shard_for_tuple(&t, shards),
                    ((flow_hash(&t) as u64 * shards as u64) >> 32) as usize
                );
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for n in 0..50 {
            assert_eq!(shard_for_tuple(&tuple(n, 5000), 1), 0);
        }
    }

    #[test]
    fn malformed_packets_go_to_shard_zero() {
        let m = Mbuf::new(vec![0u8; 4], 0);
        assert_eq!(shard_for_packet(&m, 8), 0);
    }

    #[test]
    fn steer_is_per_flow_stable() {
        let mut st = FlowSteer::new(SteerConfig::default(), 4);
        // Interleave many flows; every flow must get one answer forever,
        // even as the load picture shifts underneath.
        let mut first = std::collections::HashMap::new();
        for round in 0..200u16 {
            for f in 0..37u16 {
                let t = tuple(f, 3000 + f);
                let s = st.steer(&t);
                let prev = *first.entry(f).or_insert(s);
                assert_eq!(prev, s, "flow {f} moved shards at round {round}");
            }
        }
    }

    #[test]
    fn cold_shards_keep_hash_placement() {
        let mut st = FlowSteer::new(SteerConfig::default(), 4);
        // A perfectly uniform workload never gets hot, so every flow
        // stays on its hash home.
        for round in 0..50u16 {
            for f in 0..64u16 {
                let t = tuple(f, 4000 + f);
                let s = st.steer(&t);
                assert_eq!(s, shard_for_tuple(&t, 4), "round {round} flow {f}");
            }
        }
        assert_eq!(st.stats().steered, 0);
    }

    #[test]
    fn elephants_spread_off_hot_shard() {
        let mut st = FlowSteer::new(
            SteerConfig {
                window: 256,
                ..SteerConfig::default()
            },
            2,
        );
        // Find an elephant tuple homed on shard 0 and hammer it hot.
        let hot = (0..500u16)
            .map(|n| tuple(n, 6000 + n))
            .find(|t| shard_for_tuple(t, 2) == 0)
            .unwrap();
        for _ in 0..2000 {
            assert_eq!(st.steer(&hot), 0, "pinned flows never migrate");
        }
        // New flows whose hash home is the hot shard 0 get steered to
        // shard 1 by P2C.
        let mut steered = 0;
        for n in 1000..1200u16 {
            let t = tuple(n, n);
            if shard_for_tuple(&t, 2) == 0 && st.steer(&t) == 1 {
                steered += 1;
            }
        }
        assert!(steered > 0, "no flow escaped the hot shard");
        assert_eq!(st.stats().steered, steered);
        assert!(st.stats().elephants >= 1);
    }

    #[test]
    fn probe_prefers_dead_slots_over_idle_reclaims() {
        // Regression: probe() used a single first-candidate-wins option,
        // so an idle-but-live pin earlier in the probe run was evicted
        // even when a genuinely dead slot existed later in the run.
        let mut st = FlowSteer::new(
            SteerConfig {
                pin_capacity: 8,
                pin_idle: 10,
                ..SteerConfig::default()
            },
            4,
        );
        // With capacity 8 and PROBE_RUN 8 every probe run covers the
        // whole table, so dead slots are always reachable.
        let a = tuple(1, 1);
        let slot_a = (flow_hash(&a) as usize) & 7;
        let shard_a = st.steer(&a);
        // A second flow on a different slot, hammered until `a` is idle
        // past pin_idle.
        let b = (2..500u16)
            .map(|n| tuple(n, n))
            .find(|t| (flow_hash(t) as usize) & 7 != slot_a)
            .unwrap();
        for _ in 0..30 {
            st.steer(&b);
        }
        // A new flow whose probe run starts exactly at `a`'s slot: the
        // idle-live pin is the first candidate, but six dead slots
        // follow it in the run.
        let c = (500..5000u16)
            .map(|n| tuple(n, n))
            .find(|t| (flow_hash(t) as usize) & 7 == slot_a && *t != a)
            .unwrap();
        st.steer(&c);
        assert_eq!(
            st.stats().reclaimed,
            0,
            "evicted a tracked flow while dead slots existed"
        );
        assert_eq!(st.stats().tracked, 3, "a, b, and c must all be tracked");
        assert_eq!(st.steer(&a), shard_a, "a's pin must survive c's arrival");
    }

    #[test]
    fn load_counters_halve_every_window() {
        // Regression: SteerConfig::window documents halving every
        // `window` packets, but note_dispatch halved at `window * 2`.
        let mut st = FlowSteer::new(
            SteerConfig {
                window: 100,
                ..SteerConfig::default()
            },
            4,
        );
        let t = tuple(9, 9);
        for _ in 0..99 {
            st.steer(&t);
        }
        assert_eq!(st.window_total, 99);
        st.steer(&t);
        assert_eq!(
            st.window_total, 50,
            "the window must decay at `window` dispatches, not `window * 2`"
        );
    }

    #[test]
    fn deep_queue_marks_shard_hot_before_dispatch_counts_do() {
        let mut st = FlowSteer::new(SteerConfig::default(), 2);
        // No dispatch history at all — the window check alone would call
        // nothing hot. A deep observed backlog on shard 0 must still
        // steer new shard-0-homed flows to shard 1.
        st.set_depths(&[512, 0]);
        let mut steered = 0;
        for n in 0..200u16 {
            let t = tuple(n, 8000 + n);
            if shard_for_tuple(&t, 2) == 0 && st.steer(&t) == 1 {
                steered += 1;
            }
        }
        assert!(steered > 0, "observed depth never marked the shard hot");
        assert_eq!(st.stats().steered, steered);
        // The gauge is replaced, not accumulated: a drained shard cools.
        st.set_depths(&[0, 0]);
        let t = tuple(9000, 1);
        assert_eq!(
            st.steer(&t),
            shard_for_tuple(&t, 2),
            "drained shard stayed hot"
        );
    }

    #[test]
    fn shallow_depths_below_floor_are_not_hot() {
        let mut st = FlowSteer::new(SteerConfig::default(), 2);
        // Depth below the floor is normal in-flight batching; placement
        // must stay pure hash.
        st.set_depths(&[8, 0]);
        for n in 0..100u16 {
            let t = tuple(n, 9500 + n);
            assert_eq!(st.steer(&t), shard_for_tuple(&t, 2));
        }
        assert_eq!(st.stats().steered, 0);
    }

    #[test]
    fn pin_table_overflow_falls_back_to_hash() {
        let mut st = FlowSteer::new(
            SteerConfig {
                pin_capacity: 8,
                ..SteerConfig::default()
            },
            4,
        );
        // Far more flows than pin slots: overflow flows must use plain
        // hash placement (and keep using it — consistency is the point).
        for n in 0..2000u16 {
            let t = tuple(n, 7000 + n);
            let s = st.steer(&t);
            let again = st.steer(&t);
            assert_eq!(s, again);
            if st.stats().tracked == 0 {
                assert_eq!(s, shard_for_tuple(&t, 4));
            }
        }
        assert!(st.stats().untracked > 0, "overflow never happened");
        assert!(st.stats().tracked <= 8);
    }
}
