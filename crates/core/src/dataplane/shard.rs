//! The worker side of the parallel data plane: one OS thread per shard,
//! each owning a complete single-threaded [`Router`].
//!
//! A shard's mailbox is a bounded FIFO carrying both packets and control
//! commands, so per-shard ordering between the two is exactly the order
//! the dispatcher issued them in — a filter installed before a packet was
//! dispatched is guaranteed visible to that packet, just as it would be
//! on the single-threaded router.

use crate::ip_core::{DataPathStats, Disposition};
use crate::obs::TraceCategory;
use crate::router::Router;
use crossbeam_channel::{Receiver, Sender};
use rp_classifier::flow_table::FlowTableStats;
use rp_packet::mbuf::IfIndex;
use rp_packet::Mbuf;
use std::thread::JoinHandle;
use std::time::Instant;

/// A control command executed on the shard thread with full access to the
/// shard's state. Results travel back through whatever channel the
/// closure captured.
pub type ControlFn = Box<dyn FnOnce(&mut ShardCtx) + Send>;

/// Everything a shard thread owns.
pub struct ShardCtx {
    /// This shard's index in the dispatch function.
    pub index: usize,
    /// The shard's complete single-threaded router: its own AIU, flow
    /// table, gates, scheduler queues, and plugin instances.
    pub router: Router,
    /// Nanoseconds this shard has spent processing packets (receive +
    /// pump), i.e. its CPU demand. With one core per shard this is the
    /// shard's wall-clock busy time; the scaling bench divides packet
    /// count by the *maximum* shard busy time to get the aggregate rate
    /// the array sustains.
    pub busy_ns: u64,
    /// Packets this shard has processed.
    pub packets: u64,
}

/// Messages a shard consumes, in strict FIFO order.
pub enum ShardMsg {
    /// One packet to run through the data path.
    Packet(Mbuf),
    /// A control command (fan-out from the single control plane).
    Control(ControlFn),
    /// Reply on the enclosed channel once every earlier message has been
    /// fully processed (the dispatcher's flush/quiesce point).
    Barrier(Sender<()>),
    /// Drain and exit.
    Shutdown,
}

/// Per-shard statistics snapshot (pmgr `stats` breakdown, scaling bench).
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Packets processed.
    pub packets: u64,
    /// Busy time in nanoseconds (see [`ShardCtx::busy_ns`]).
    pub busy_ns: u64,
    /// Cumulative CPU time of the shard thread in nanoseconds (0 when the
    /// platform doesn't expose it). Unlike `busy_ns` (wall time inside
    /// the packet path) this is immune to preemption inflation when more
    /// shards than cores share the measurement host, at ~10 ms kernel
    /// accounting granularity — benches prefer it over long runs.
    pub cpu_ns: u64,
    /// The shard router's data-path counters.
    pub data: DataPathStats,
    /// The shard router's flow-cache counters.
    pub flows: FlowTableStats,
}

/// Cumulative CPU time (user + system) of the *calling* thread, from
/// `/proc/thread-self/stat`. `None` off Linux or on parse failure.
fn thread_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // The comm field may contain spaces; everything after the closing
    // paren is fixed-position. utime/stime are the 12th/13th tokens after
    // it, in USER_HZ (100 Hz on Linux) ticks.
    let (_, rest) = stat.rsplit_once(')')?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = toks.get(11)?.parse().ok()?;
    let stime: u64 = toks.get(12)?.parse().ok()?;
    Some((utime + stime) * 10_000_000)
}

/// The dispatcher's handle to one shard.
pub(crate) struct ShardHandle {
    pub(crate) tx: Sender<ShardMsg>,
    pub(crate) join: Option<JoinHandle<()>>,
}

/// Push everything the shard's router transmitted onto the shared egress
/// collector. Packets of one flow always leave the same shard in
/// processing order, so per-flow order on the collector is the router's
/// emission order.
fn drain_tx(router: &mut Router, egress: &Sender<(IfIndex, Mbuf)>) {
    for i in 0..router.interface_count() {
        let ifx = i as IfIndex;
        for pkt in router.take_tx(ifx) {
            // A dropped collector means the dispatcher is gone; the shard
            // is about to shut down anyway.
            let _ = egress.send((ifx, pkt));
        }
    }
}

/// The shard thread's main loop.
pub(crate) fn run_shard(
    mut ctx: ShardCtx,
    rx: Receiver<ShardMsg>,
    egress: Sender<(IfIndex, Mbuf)>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Packet(pkt) => {
                if ctx.router.tracer().wants(TraceCategory::Shard) {
                    let now = ctx.router.now_ns();
                    let detail =
                        format!("shard {} rx_if={} len={}", ctx.index, pkt.rx_if, pkt.len());
                    ctx.router
                        .tracer_mut()
                        .record(now, TraceCategory::Shard, detail);
                }
                let t0 = Instant::now();
                let d = ctx.router.receive(pkt);
                if let Disposition::Queued(iface) = d {
                    // Mirror the testbench's immediate retransmit: drain
                    // one packet from the egress scheduler per arrival.
                    ctx.router.pump(iface, 1);
                }
                ctx.busy_ns += t0.elapsed().as_nanos() as u64;
                ctx.packets += 1;
                drain_tx(&mut ctx.router, &egress);
            }
            ShardMsg::Control(f) => {
                f(&mut ctx);
                // Control actions can emit too (force-unload drains
                // scheduler backlogs to the wire).
                drain_tx(&mut ctx.router, &egress);
            }
            ShardMsg::Barrier(done) => {
                let _ = done.send(());
            }
            ShardMsg::Shutdown => break,
        }
    }
    drain_tx(&mut ctx.router, &egress);
}

impl ShardCtx {
    /// Statistics snapshot. Meant to run *on the shard thread* (i.e. via
    /// `control_map`), so `cpu_ns` reads that thread's CPU clock.
    pub fn report(&self) -> ShardReport {
        ShardReport {
            shard: self.index,
            packets: self.packets,
            busy_ns: self.busy_ns,
            cpu_ns: thread_cpu_ns().unwrap_or(0),
            data: self.router.stats(),
            flows: self.router.flow_stats(),
        }
    }
}
