//! The worker side of the parallel data plane: one OS thread per shard,
//! each owning a complete single-threaded [`Router`].
//!
//! A shard's mailbox is a bounded FIFO carrying both packets and control
//! commands, so per-shard ordering between the two is exactly the order
//! the dispatcher issued them in — a filter installed before a packet was
//! dispatched is guaranteed visible to that packet, just as it would be
//! on the single-threaded router.
//!
//! Shard threads are supervised: the loop runs under `catch_unwind`
//! (a panic escaping a control closure kills the *shard*, not the
//! process), writes a heartbeat the dispatcher's watchdog reads, and —
//! on any exit path, including abandonment after a stall — returns a
//! final [`ShardFinal`] accounting report so no counter is silently
//! lost with the thread.

use crate::ip_core::{DataPathStats, Disposition};
use crate::obs::{MetricsSnapshot, TraceCategory};
use crate::router::Router;
use crate::supervisor::run_isolated;
use crossbeam_channel::{Receiver, Sender, TrySendError};
use rp_classifier::flow_table::FlowTableStats;
use rp_packet::mbuf::IfIndex;
use rp_packet::Mbuf;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A control command executed on the shard thread with full access to the
/// shard's state. Results travel back through whatever channel the
/// closure captured.
pub type ControlFn = Box<dyn FnOnce(&mut ShardCtx) + Send>;

/// Everything a shard thread owns.
pub struct ShardCtx {
    /// This shard's index in the dispatch function.
    pub index: usize,
    /// The shard's complete single-threaded router: its own AIU, flow
    /// table, gates, scheduler queues, and plugin instances.
    pub router: Router,
    /// Nanoseconds this shard has spent processing packets (receive +
    /// pump), i.e. its CPU demand. With one core per shard this is the
    /// shard's wall-clock busy time; the scaling bench divides packet
    /// count by the *maximum* shard busy time to get the aggregate rate
    /// the array sustains.
    pub busy_ns: u64,
    /// Packets this shard has processed.
    pub packets: u64,
    /// Times the per-thread CPU clock could not be read (`/proc` parse
    /// failure). Surfaced in [`ShardReport`] so a zero `cpu_ns` is never
    /// silent.
    pub cpu_clock_errors: u64,
}

/// Messages a shard consumes, in strict FIFO order.
pub enum ShardMsg {
    /// One packet to run through the data path.
    Packet(Mbuf),
    /// Several packets of this shard's flows, dispatched in one channel
    /// send. Processed front-to-back, so per-flow order is identical to
    /// the equivalent sequence of `Packet` messages; the emptied carrier
    /// `Vec` is returned to the dispatcher on the scrap channel for
    /// reuse.
    Batch(Vec<Mbuf>),
    /// A control command (fan-out from the single control plane).
    Control(ControlFn),
    /// Reply with the shard index on the enclosed channel once every
    /// earlier message has been fully processed (the dispatcher's
    /// flush/quiesce point).
    Barrier(Sender<usize>),
    /// Drain and exit.
    Shutdown,
}

/// Messages the ring-mode consumer pulls into its local run per cursor
/// publication: bounds the latency of the abandoned-flag check while
/// amortizing the release-store over a run of messages.
const RECV_RUN: usize = 64;

/// Ring-mode consumer wait tuning (see [`rp_ring::Consumer::wait_nonempty`]):
/// spin briefly for back-to-back batches, yield a few times as a cheap
/// off-ramp, then park on the doorbell. The park timeout bounds how long
/// an abandoned-but-not-disconnected worker waits before rechecking its
/// flag.
const RECV_SPINS: u32 = 64;
const RECV_YIELDS: u32 = 4;
const RECV_PARK: Duration = Duration::from_millis(2);

/// On a host with a single hardware thread the producer cannot make
/// progress while a consumer busy-polls — every spin or yield burns a
/// timeslice the dispatcher needed — so empty consumers go straight to
/// the doorbell. Probed once; spinning is only worth it with real
/// parallelism.
fn recv_wait_profile() -> (u32, u32) {
    static PROFILE: std::sync::OnceLock<(u32, u32)> = std::sync::OnceLock::new();
    *PROFILE.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            (RECV_SPINS, RECV_YIELDS)
        } else {
            (0, 0)
        }
    })
}

/// The dispatcher's sending half of one shard's ingress FIFO: the
/// vendored channel stub ([`DispatchMode::Channel`]) or an SPSC ring
/// ([`DispatchMode::Ring`]). Both expose channel-style `try_send`
/// semantics, so the dispatcher's overload/health machinery is mode-blind.
///
/// The ring producer sits behind a `Mutex` because read-only control
/// fan-outs send from `&self` ([`ParallelRouter::read_all`]); the
/// dispatcher is the only thread that ever locks it, so the lock is
/// always uncontended — a compare-exchange pair, not a contention point.
///
/// [`DispatchMode::Channel`]: super::DispatchMode::Channel
/// [`DispatchMode::Ring`]: super::DispatchMode::Ring
/// [`ParallelRouter::read_all`]: super::ParallelRouter
pub(crate) enum ShardSender {
    Channel(Sender<ShardMsg>),
    Ring(Mutex<rp_ring::Producer<ShardMsg>>),
}

impl ShardSender {
    pub(crate) fn try_send(&self, msg: ShardMsg) -> Result<(), TrySendError<ShardMsg>> {
        match self {
            ShardSender::Channel(tx) => tx.try_send(msg),
            ShardSender::Ring(p) => {
                let mut p = p.lock().unwrap_or_else(|e| e.into_inner());
                p.try_push(msg).map_err(|e| match e {
                    rp_ring::PushError::Full(m) => TrySendError::Full(m),
                    rp_ring::PushError::Disconnected(m) => TrySendError::Disconnected(m),
                })
            }
        }
    }

    /// Messages currently queued toward the shard (occupancy of the
    /// ingress FIFO as seen from the producer end). Ring mode reads the
    /// SPSC cursors ([`rp_ring::Producer::occupancy`]); the vendored
    /// channel stub exposes no length, so channel mode reports 0 — depth
    /// steering is a ring-mode feature, and a 0 reading degrades to the
    /// existing dispatch-window behaviour.
    pub(crate) fn depth(&self) -> usize {
        match self {
            ShardSender::Channel(_) => 0,
            ShardSender::Ring(p) => p.lock().unwrap_or_else(|e| e.into_inner()).occupancy(),
        }
    }

    /// A sender whose peer is already gone, in the same mode: replacing a
    /// slot's sender with this disconnects the worker's receive loop
    /// (the abandonment path).
    pub(crate) fn dead(ring: bool) -> ShardSender {
        if ring {
            let (p, _) = rp_ring::spsc(1);
            ShardSender::Ring(Mutex::new(p))
        } else {
            let (tx, _) = crossbeam_channel::bounded(1);
            ShardSender::Channel(tx)
        }
    }
}

/// The worker's receiving half, paired with [`ShardSender`]. Ring mode
/// drains the ring in runs of [`RECV_RUN`] into a local deque (one
/// consumer-cursor release-store per run) and waits with
/// spin→yield→doorbell-park adaptivity.
pub(crate) enum ShardReceiver {
    Channel(Receiver<ShardMsg>),
    Ring {
        rx: rp_ring::Consumer<ShardMsg>,
        pending: VecDeque<ShardMsg>,
    },
}

impl ShardReceiver {
    /// Next message, blocking until one arrives or the FIFO disconnects
    /// (`None`). Ring mode also returns `None` once `shared` is flagged
    /// abandoned — messages left in the ring or the local run are
    /// accounted by the dispatcher's sent/processed gap, exactly like
    /// messages stranded in a dead channel.
    fn recv(&mut self, shared: &ShardShared) -> Option<ShardMsg> {
        match self {
            ShardReceiver::Channel(rx) => rx.recv().ok(),
            ShardReceiver::Ring { rx, pending } => loop {
                if let Some(m) = pending.pop_front() {
                    return Some(m);
                }
                if rx.pop_batch(RECV_RUN, &mut |m| pending.push_back(m)) > 0 {
                    continue;
                }
                if shared.is_abandoned() {
                    return None;
                }
                let (spins, yields) = recv_wait_profile();
                match rx.wait_nonempty(spins, yields, RECV_PARK) {
                    rp_ring::WaitOutcome::Disconnected => return None,
                    rp_ring::WaitOutcome::Ready | rp_ring::WaitOutcome::TimedOut => {}
                }
            },
        }
    }
}

/// Where a shard pushes transmitted packets. Channel mode sends each
/// `(iface, packet)` on the shared collector — simple, but one channel
/// operation (and one dispatcher-side mutex acquisition) per packet.
/// Ring mode batches: one carrier `Vec` per egress drain, sent in one
/// operation and drained by the dispatcher under one lock; emptied
/// carriers come back on a scrap channel so the steady state allocates
/// nothing.
pub(crate) enum EgressSink {
    PerPacket(Sender<(IfIndex, Mbuf)>),
    Batched {
        tx: Sender<Vec<(IfIndex, Mbuf)>>,
        /// Emptied carriers returned by the dispatcher; shared by all
        /// shards (one `try_recv` per drain, not per packet).
        scrap: Receiver<Vec<(IfIndex, Mbuf)>>,
        /// Per-interface staging reused across drains.
        scratch: Vec<Mbuf>,
    },
}

impl EgressSink {
    /// Push everything the shard's router transmitted onto the collector.
    /// Packets of one flow always leave the same shard in processing
    /// order, and a carrier preserves its fill order, so per-flow order
    /// on the collector is the router's emission order in both modes.
    fn drain(&mut self, router: &mut Router) {
        match self {
            EgressSink::PerPacket(tx) => {
                for i in 0..router.interface_count() {
                    let ifx = i as IfIndex;
                    for pkt in router.take_tx(ifx) {
                        // A dropped collector means the dispatcher is
                        // gone; the shard is about to shut down anyway.
                        let _ = tx.send((ifx, pkt));
                    }
                }
            }
            EgressSink::Batched { tx, scrap, scratch } => {
                let mut carrier: Option<Vec<(IfIndex, Mbuf)>> = None;
                for i in 0..router.interface_count() {
                    let ifx = i as IfIndex;
                    router.take_tx_into(ifx, scratch);
                    if scratch.is_empty() {
                        continue;
                    }
                    let c = carrier.get_or_insert_with(|| scrap.try_recv().unwrap_or_default());
                    c.extend(scratch.drain(..).map(|p| (ifx, p)));
                }
                if let Some(c) = carrier {
                    let _ = tx.send(c);
                }
            }
        }
    }
}

/// Per-shard statistics snapshot (pmgr `stats` breakdown, scaling bench).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Packets processed.
    pub packets: u64,
    /// Busy time in nanoseconds (see [`ShardCtx::busy_ns`]).
    pub busy_ns: u64,
    /// Cumulative CPU time of the shard thread in nanoseconds (0 when the
    /// platform doesn't expose it — see `cpu_clock_errors`). Unlike
    /// `busy_ns` (wall time inside the packet path) this is immune to
    /// preemption inflation when more shards than cores share the
    /// measurement host, at ~10 ms kernel accounting granularity —
    /// benches prefer it over long runs.
    pub cpu_ns: u64,
    /// Times the CPU clock read failed; a non-zero count flags that
    /// `cpu_ns` under-reports instead of letting 0 pass silently.
    pub cpu_clock_errors: u64,
    /// The shard router's data-path counters.
    pub data: DataPathStats,
    /// The shard router's flow-cache counters.
    pub flows: FlowTableStats,
}

/// The final accounting a shard thread returns on any exit path. The
/// dispatcher folds it into its "retired" totals so a restarted shard's
/// history survives the restart (soft flow-cache state does not — that
/// is rebuilt by first-packet classification, as the paper intends).
pub(crate) struct ShardFinal {
    /// The closing statistics snapshot.
    pub(crate) report: ShardReport,
    /// The closing metrics registry.
    pub(crate) metrics: MetricsSnapshot,
    /// Packets the router had counted `forwarded` into scheduler queues
    /// that never reached the wire because the shard exited. The
    /// dispatcher re-accounts them as `ShardDown` drops.
    pub(crate) stranded: u64,
    /// The panic message, when the loop died to an escaped panic.
    pub(crate) panic: Option<String>,
}

/// State shared between a shard thread and the dispatcher's watchdog:
/// a heartbeat (busy flag + timestamp), a processed-packet counter, and
/// the abandonment flag that tells a stalled thread it has been replaced.
pub(crate) struct ShardShared {
    /// Dispatcher-chosen epoch all heartbeat timestamps are relative to.
    epoch: Instant,
    /// `(ms since epoch << 1) | busy`. The shard sets `busy` before
    /// touching a message and clears it after, so a stale busy bit means
    /// the thread is stuck *inside* a message (wedged plugin, hot loop).
    state: AtomicU64,
    /// Packets fully processed. Lets the dispatcher account queue loss
    /// (`sent - processed`) without reaching into a dead thread.
    processed: AtomicU64,
    /// Set by the dispatcher when it gives up on this incarnation; the
    /// loop exits at the next message boundary instead of racing its
    /// replacement.
    abandoned: AtomicBool,
}

impl ShardShared {
    pub(crate) fn new(epoch: Instant) -> Self {
        ShardShared {
            epoch,
            state: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            abandoned: AtomicBool::new(false),
        }
    }

    fn beat(&self, busy: bool) {
        let ms = self.epoch.elapsed().as_millis() as u64;
        self.state
            .store((ms << 1) | u64::from(busy), Ordering::Relaxed);
    }

    /// How long the shard has been continuously busy inside one message,
    /// or `None` when it is between messages (idle or draining its FIFO
    /// promptly). Millisecond granularity — stall timeouts are tens of
    /// milliseconds and up.
    pub(crate) fn busy_for(&self, now: Instant) -> Option<Duration> {
        let s = self.state.load(Ordering::Relaxed);
        if s & 1 == 0 {
            return None;
        }
        let ts_ms = s >> 1;
        let now_ms = now.duration_since(self.epoch).as_millis() as u64;
        Some(Duration::from_millis(now_ms.saturating_sub(ts_ms)))
    }

    /// Packets fully processed by this incarnation.
    pub(crate) fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_abandoned(&self) {
        self.abandoned.store(true, Ordering::Relaxed);
    }

    fn is_abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Relaxed)
    }
}

/// Clock ticks per second for `/proc` utime/stime fields, from
/// `getconf CLK_TCK` (the no-`unsafe` stand-in for
/// `sysconf(_SC_CLK_TCK)`), probed once per process. Falls back to 100:
/// Linux fixes `USER_HZ` at 100 for the userspace ABI regardless of the
/// kernel's internal HZ, so the fallback is the documented value, not a
/// guess.
fn user_hz() -> u64 {
    static USER_HZ: OnceLock<u64> = OnceLock::new();
    *USER_HZ.get_or_init(|| {
        std::process::Command::new("getconf")
            .arg("CLK_TCK")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|hz| (1..=1_000_000).contains(hz))
            .unwrap_or(100)
    })
}

/// Cumulative CPU time (user + system) of the *calling* thread, from
/// `/proc/thread-self/stat`. `None` off Linux or on parse failure.
fn thread_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // The comm field may contain spaces; everything after the closing
    // paren is fixed-position. utime/stime are the 12th/13th tokens after
    // it, in `USER_HZ` ticks (see [`user_hz`]).
    let (_, rest) = stat.rsplit_once(')')?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = toks.get(11)?.parse().ok()?;
    let stime: u64 = toks.get(12)?.parse().ok()?;
    Some((utime + stime) * (1_000_000_000 / user_hz()))
}

/// Run one packet through the shard's data path: receive, the
/// testbench-mirroring single pump on `Queued`, busy-time and packet
/// accounting. Shared by the `Packet` and `Batch` arms so a batch is
/// observably identical to the same packets sent one message each.
fn process_packet(ctx: &mut ShardCtx, pkt: Mbuf, wall_now_ns: u64) {
    if ctx.router.tracer().wants(TraceCategory::Shard) {
        let now = ctx.router.now_ns();
        let detail = format!("shard {} rx_if={} len={}", ctx.index, pkt.rx_if, pkt.len());
        ctx.router
            .tracer_mut()
            .record(now, TraceCategory::Shard, detail);
    }
    let t0 = Instant::now();
    let d = ctx.router.receive_stamped(pkt, wall_now_ns);
    if let Disposition::Queued(iface) = d {
        // Mirror the testbench's immediate retransmit: drain one packet
        // from the egress scheduler per arrival.
        ctx.router.pump(iface, 1);
    }
    ctx.busy_ns += t0.elapsed().as_nanos() as u64;
    ctx.packets += 1;
}

/// The message loop proper. Runs under `catch_unwind` in [`run_shard`];
/// a panic that escapes here (control closures run unprotected — packet
/// gates are already isolated per-call by the plugin supervisor) kills
/// only this shard.
fn shard_loop(
    ctx: &mut ShardCtx,
    rx: &mut ShardReceiver,
    egress: &mut EgressSink,
    scrap: &Sender<Vec<Mbuf>>,
    shared: &ShardShared,
) {
    loop {
        if shared.is_abandoned() {
            return;
        }
        // While blocked here the heartbeat shows idle, which is never a
        // stall; abandonment unblocks it because the dispatcher drops the
        // old sender when it replaces the shard (and, in ring mode, the
        // bounded doorbell park re-checks the abandoned flag).
        let Some(msg) = rx.recv(shared) else { return };
        shared.beat(true);
        if shared.is_abandoned() {
            // A replacement already owns this shard index; drop the
            // message (the dispatcher's sent/processed gap accounts it).
            return;
        }
        match msg {
            ShardMsg::Packet(pkt) => {
                process_packet(ctx, pkt, rp_packet::coarse_now_ns());
                egress.drain(&mut ctx.router);
                shared.processed.fetch_add(1, Ordering::Relaxed);
            }
            ShardMsg::Batch(mut pkts) => {
                // One heartbeat-busy window covers the whole batch; the
                // watchdog's stall timeouts are tens of milliseconds,
                // far above any sane batch's processing time. The wall
                // clock is likewise read once per batch: sojourn is a
                // coarse end-to-end measure, not a per-packet stopwatch.
                let wall = rp_packet::coarse_now_ns();
                for pkt in pkts.drain(..) {
                    process_packet(ctx, pkt, wall);
                    shared.processed.fetch_add(1, Ordering::Relaxed);
                }
                // Egress drain is the amortized part: one pass over the
                // tx logs per batch instead of per packet.
                egress.drain(&mut ctx.router);
                // Hand the emptied carrier back for reuse. A dropped
                // scrap receiver just means the dispatcher stopped
                // recycling; the Vec is freed here instead.
                let _ = scrap.send(pkts);
            }
            ShardMsg::Control(f) => {
                f(ctx);
                // Control actions can emit too (force-unload drains
                // scheduler backlogs to the wire).
                egress.drain(&mut ctx.router);
            }
            ShardMsg::Barrier(done) => {
                let _ = done.send(ctx.index);
            }
            ShardMsg::Shutdown => {
                shared.beat(false);
                return;
            }
        }
        shared.beat(false);
    }
}

/// The shard thread's entry point: run the loop under panic isolation and
/// always return a final accounting report, whatever the exit path.
pub(crate) fn run_shard(
    mut ctx: ShardCtx,
    mut rx: ShardReceiver,
    mut egress: EgressSink,
    scrap: Sender<Vec<Mbuf>>,
    shared: std::sync::Arc<ShardShared>,
) -> ShardFinal {
    let panic = run_isolated(|| shard_loop(&mut ctx, &mut rx, &mut egress, &scrap, &shared)).err();
    shared.beat(false);
    // Flush whatever already reached the tx logs, then snapshot. Both run
    // isolated too: after a panic the router may be torn mid-call and a
    // second panic here must not take down the final accounting.
    let _ = run_isolated(|| egress.drain(&mut ctx.router));
    let (metrics, stranded) = run_isolated(|| {
        let m = ctx.router.metrics_snapshot();
        let stranded: u64 = m.queue_depth.iter().sum();
        (m, stranded)
    })
    .unwrap_or((MetricsSnapshot::default(), 0));
    let report = run_isolated(|| ctx.report()).unwrap_or(ShardReport {
        shard: ctx.index,
        packets: ctx.packets,
        busy_ns: ctx.busy_ns,
        cpu_clock_errors: ctx.cpu_clock_errors,
        ..ShardReport::default()
    });
    ShardFinal {
        report,
        metrics,
        stranded,
        panic,
    }
}

impl ShardCtx {
    /// Statistics snapshot. Meant to run *on the shard thread* (i.e. via
    /// `control_map`), so `cpu_ns` reads that thread's CPU clock; a
    /// failed read is counted, not silently reported as 0.
    pub fn report(&mut self) -> ShardReport {
        let cpu_ns = match thread_cpu_ns() {
            Some(ns) => ns,
            None => {
                self.cpu_clock_errors += 1;
                0
            }
        };
        ShardReport {
            shard: self.index,
            packets: self.packets,
            busy_ns: self.busy_ns,
            cpu_ns,
            cpu_clock_errors: self.cpu_clock_errors,
            data: self.router.stats(),
            flows: self.router.flow_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_hz_is_sane() {
        let hz = user_hz();
        assert!((1..=1_000_000).contains(&hz), "USER_HZ {hz}");
    }

    #[test]
    fn thread_cpu_clock_reads_on_linux() {
        if cfg!(target_os = "linux") {
            // Parse must succeed; the value itself can legitimately be 0
            // on a freshly spawned thread (10 ms accounting granularity).
            assert!(thread_cpu_ns().is_some());
        }
    }

    #[test]
    fn heartbeat_tracks_busy_windows() {
        let epoch = Instant::now();
        let hb = ShardShared::new(epoch);
        assert!(hb.busy_for(Instant::now()).is_none());
        hb.beat(true);
        std::thread::sleep(Duration::from_millis(20));
        let busy = hb.busy_for(Instant::now()).expect("busy");
        assert!(busy >= Duration::from_millis(10), "{busy:?}");
        hb.beat(false);
        assert!(hb.busy_for(Instant::now()).is_none());
    }
}
