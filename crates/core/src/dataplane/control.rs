//! The single control plane over N data-plane shards.
//!
//! The paper's control path (pmgr → Router Plugin Library → PCU) stays
//! one logical entity: every command fans out to all shards in per-shard
//! FIFO order with the data path, and the replies are aggregated back
//! into the one answer a single-router operator would see. Because every
//! shard applies the identical command sequence, instance and filter ids
//! assigned by the per-shard PCU/AIU stay in lockstep — an id returned by
//! `create` names the same logical instance on every shard.
//!
//! [`ControlPlane`] is the trait `pmgr` drives; it is implemented by the
//! single-threaded [`Router`](crate::router::Router) (trivially) and by
//! [`ParallelRouter`](super::ParallelRouter) (fan-out + aggregation).

use crate::gate::Gate;
use crate::ip_core::DataPathStats;
use crate::message::{PluginMsg, PluginReply};
use crate::obs::{MetricsSnapshot, TraceEvent};
use crate::plugin::{InstanceId, PluginError};
use crate::router::Router;
use crate::supervisor::HealthReport;
use rp_classifier::flow_table::FlowTableStats;
use rp_packet::mbuf::IfIndex;
use std::net::IpAddr;

/// A supervision report with its origin: `None` on a single router,
/// `Some(shard)` on a parallel data plane.
#[derive(Debug, Clone)]
pub struct ShardHealthReport {
    /// Which shard the report came from (None = unsharded router).
    pub shard: Option<usize>,
    /// The instance's supervision snapshot.
    pub report: HealthReport,
}

/// One row of a `stats` report: a label ("total", "shard 0", …) plus the
/// data-path and flow-cache counters behind it.
#[derive(Debug, Clone)]
pub struct StatsRow {
    /// Row label.
    pub label: String,
    /// Data-path counters.
    pub data: DataPathStats,
    /// Flow-cache counters.
    pub flows: FlowTableStats,
}

/// One row of a `metrics` report: a label ("total", "shard 0", …) plus
/// the metrics snapshot behind it.
#[derive(Debug, Clone)]
pub struct MetricsRow {
    /// Row label.
    pub label: String,
    /// The registry snapshot.
    pub metrics: MetricsSnapshot,
}

/// A trace event with its origin: `None` on a single router, `Some(shard)`
/// on a parallel data plane.
#[derive(Debug, Clone)]
pub struct ShardTraceEvent {
    /// Which shard recorded the event (None = unsharded router).
    pub shard: Option<usize>,
    /// The event.
    pub event: TraceEvent,
}

/// The control-plane surface `pmgr` (and the daemons) drive. One
/// implementation per data-plane shape; the command language is identical
/// over both.
pub trait ControlPlane {
    /// `modload <name>`.
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError>;
    /// `modunload <name>`.
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError>;
    /// Forced `modunload`: free live instances and their bindings first.
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError>;
    /// Standardized / plugin-specific message dispatch.
    fn cp_send_message(&mut self, plugin: &str, msg: PluginMsg)
        -> Result<PluginReply, PluginError>;
    /// Add a core route.
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex);
    /// Remove a core route.
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool;
    /// Enable/disable a gate.
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool);
    /// Attach a default egress scheduler to an interface.
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError>;
    /// Installed filters at a gate, human-readable.
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String>;
    /// Live instances, human-readable.
    fn cp_describe_instances(&self) -> Vec<String>;
    /// Supervision state, labelled by shard where applicable.
    fn cp_health_reports(&self) -> Vec<ShardHealthReport>;
    /// Loaded plugin names.
    fn cp_loaded_plugins(&self) -> Vec<String>;
    /// Statistics rows: the merged total first, then any per-shard
    /// breakdown.
    fn cp_stats_rows(&self) -> Vec<StatsRow>;
    /// Metrics rows: the merged registry snapshot first, then any
    /// per-shard breakdown.
    fn cp_metrics_rows(&self) -> Vec<MetricsRow>;
    /// Turn the event tracer on or off (all categories) without stopping
    /// the data path.
    fn cp_trace_enable(&mut self, on: bool);
    /// The last `n` trace events (per shard on a parallel data plane),
    /// labelled by origin, oldest first within each origin.
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent>;
}

impl ControlPlane for Router {
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.load_plugin(name)
    }
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.unload_plugin(name)
    }
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.force_unload_plugin(name)
    }
    fn cp_send_message(
        &mut self,
        plugin: &str,
        msg: PluginMsg,
    ) -> Result<PluginReply, PluginError> {
        self.send_message(plugin, msg)
    }
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.add_route(addr, prefix_len, tx_if)
    }
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool {
        self.remove_route(addr, prefix_len)
    }
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool) {
        self.set_gate_enabled(gate, enabled)
    }
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError> {
        self.set_default_scheduler(iface, plugin, id)
    }
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String> {
        self.describe_filters(gate)
    }
    fn cp_describe_instances(&self) -> Vec<String> {
        self.describe_instances()
    }
    fn cp_health_reports(&self) -> Vec<ShardHealthReport> {
        self.health_reports()
            .into_iter()
            .map(|report| ShardHealthReport {
                shard: None,
                report,
            })
            .collect()
    }
    fn cp_loaded_plugins(&self) -> Vec<String> {
        self.loader.loaded()
    }
    fn cp_stats_rows(&self) -> Vec<StatsRow> {
        vec![StatsRow {
            label: "total".to_string(),
            data: self.stats(),
            flows: self.flow_stats(),
        }]
    }
    fn cp_metrics_rows(&self) -> Vec<MetricsRow> {
        vec![MetricsRow {
            label: "total".to_string(),
            metrics: self.metrics_snapshot(),
        }]
    }
    fn cp_trace_enable(&mut self, on: bool) {
        self.tracer_mut().set_enabled(on);
    }
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent> {
        self.tracer()
            .dump(n)
            .into_iter()
            .map(|event| ShardTraceEvent { shard: None, event })
            .collect()
    }
}

/// Aggregate per-shard unit results: the logical operation succeeded iff
/// it succeeded everywhere; the first failure is the reported one.
pub(crate) fn merge_unit(results: Vec<Result<(), PluginError>>) -> Result<(), PluginError> {
    for r in results {
        r?;
    }
    Ok(())
}

/// Aggregate per-shard replies into the single reply the operator sees.
///
/// Shards execute identical command sequences, so structured replies
/// (instance ids, filter ids) are expected to agree — any divergence is
/// surfaced as an error rather than silently picking one shard's answer.
/// Plugin-specific `Text` replies may legitimately differ per shard
/// (e.g. per-shard packet counters); those are joined with a shard label
/// per line.
pub(crate) fn merge_replies(
    results: Vec<Result<PluginReply, PluginError>>,
) -> Result<PluginReply, PluginError> {
    let mut replies = Vec::with_capacity(results.len());
    for r in results {
        replies.push(r?);
    }
    let Some(first) = replies.first().cloned() else {
        return Err(PluginError::Busy("no data-plane shards".to_string()));
    };
    if replies.iter().all(|r| *r == first) {
        return Ok(first);
    }
    if replies.iter().all(|r| matches!(r, PluginReply::Text(_))) {
        let joined = replies
            .iter()
            .enumerate()
            .map(|(i, r)| match r {
                PluginReply::Text(t) => format!("[shard {i}] {t}"),
                _ => unreachable!("checked all-Text above"),
            })
            .collect::<Vec<_>>()
            .join("\n");
        return Ok(PluginReply::Text(joined));
    }
    Err(PluginError::Busy(format!(
        "control fan-out diverged across shards: {replies:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_first_error_wins() {
        assert!(merge_unit(vec![Ok(()), Ok(())]).is_ok());
        let e = merge_unit(vec![
            Ok(()),
            Err(PluginError::Busy("x".into())),
            Err(PluginError::Busy("y".into())),
        ])
        .unwrap_err();
        assert_eq!(e, PluginError::Busy("x".into()));
    }

    #[test]
    fn equal_replies_collapse() {
        let r = merge_replies(vec![
            Ok(PluginReply::InstanceCreated(InstanceId(3))),
            Ok(PluginReply::InstanceCreated(InstanceId(3))),
        ])
        .unwrap();
        assert_eq!(r, PluginReply::InstanceCreated(InstanceId(3)));
    }

    #[test]
    fn divergent_texts_join_with_shard_labels() {
        let r = merge_replies(vec![
            Ok(PluginReply::Text("pkts=1".into())),
            Ok(PluginReply::Text("pkts=2".into())),
        ])
        .unwrap();
        assert_eq!(
            r,
            PluginReply::Text("[shard 0] pkts=1\n[shard 1] pkts=2".into())
        );
    }

    #[test]
    fn divergent_ids_are_an_error() {
        let r = merge_replies(vec![
            Ok(PluginReply::InstanceCreated(InstanceId(1))),
            Ok(PluginReply::InstanceCreated(InstanceId(2))),
        ]);
        assert!(matches!(r, Err(PluginError::Busy(_))));
    }

    #[test]
    fn empty_shard_set_is_an_error() {
        assert!(merge_replies(vec![]).is_err());
    }
}
