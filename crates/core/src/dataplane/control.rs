//! The single control plane over N data-plane shards.
//!
//! The paper's control path (pmgr → Router Plugin Library → PCU) stays
//! one logical entity: every command fans out to all shards in per-shard
//! FIFO order with the data path, and the replies are aggregated back
//! into the one answer a single-router operator would see. Because every
//! shard applies the identical command sequence, instance and filter ids
//! assigned by the per-shard PCU/AIU stay in lockstep — an id returned by
//! `create` names the same logical instance on every shard.
//!
//! [`ControlPlane`] is the trait `pmgr` drives; it is implemented by the
//! single-threaded [`Router`](crate::router::Router) (trivially) and by
//! [`ParallelRouter`](super::ParallelRouter) (fan-out + aggregation).

use crate::gate::Gate;
use crate::ip_core::DataPathStats;
use crate::message::{PluginMsg, PluginReply};
use crate::obs::{MetricsSnapshot, TraceEvent};
use crate::plugin::{InstanceId, PluginError};
use crate::router::Router;
use crate::supervisor::{HealthReport, HealthState};
use rp_classifier::flow_table::FlowTableStats;
use rp_packet::mbuf::IfIndex;
use std::net::IpAddr;

/// A supervision report with its origin: `None` on a single router,
/// `Some(shard)` on a parallel data plane.
#[derive(Debug, Clone)]
pub struct ShardHealthReport {
    /// Which shard the report came from (None = unsharded router).
    pub shard: Option<usize>,
    /// The instance's supervision snapshot.
    pub report: HealthReport,
}

/// One row of a `stats` report: a label ("total", "shard 0", …) plus the
/// data-path and flow-cache counters behind it.
#[derive(Debug, Clone)]
pub struct StatsRow {
    /// Row label.
    pub label: String,
    /// Data-path counters.
    pub data: DataPathStats,
    /// Flow-cache counters.
    pub flows: FlowTableStats,
}

/// One row of a `metrics` report: a label ("total", "shard 0", …) plus
/// the metrics snapshot behind it.
#[derive(Debug, Clone)]
pub struct MetricsRow {
    /// Row label.
    pub label: String,
    /// The registry snapshot.
    pub metrics: MetricsSnapshot,
}

/// One row of the pmgr `shards` report: a shard worker's supervision
/// state as the dispatcher sees it. Built from dispatcher-side state and
/// the shared heartbeat only, so it stays readable even when the shard
/// thread itself is wedged.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Supervision state: `Healthy` (never faulted), `Degraded`
    /// (restarted at least once, serving), `Quarantined` (not serving:
    /// awaiting its restart backoff, or out of restart budget).
    pub health: HealthState,
    /// Completed restarts of this shard.
    pub restarts: u32,
    /// Packets dispatched to the current incarnation.
    pub sent: u64,
    /// Packets the current incarnation finished processing (from the
    /// shared heartbeat — readable even mid-stall).
    pub processed: u64,
    /// Packets shed at the dispatcher because this shard's FIFO stayed
    /// full past the bounded-wait budget.
    pub shed_overload: u64,
    /// Packets shed (or lost in a fault window and re-accounted) because
    /// this shard was dead, stalled, or awaiting restart.
    pub shed_down: u64,
    /// Whether a restart is scheduled and not yet due/completed.
    pub restart_pending: bool,
    /// The most recent fault, human-readable.
    pub last_fault: Option<String>,
}

/// Per-device I/O counters, maintained by each `NetDev` backend and
/// surfaced through the pmgr `devices` command. Plain data so the
/// control plane can render rows without knowing the backend type.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Frames read from the device (including ones dropped at decap).
    pub rx_packets: u64,
    /// Bytes read from the device (L2 frame bytes as received).
    pub rx_bytes: u64,
    /// Receive-side I/O errors (failed reads; not per-frame drops).
    pub rx_errors: u64,
    /// Frames dropped at the device's receive side before becoming IP
    /// packets (truncated / non-IP L2 frames) — the device-local view of
    /// [`DropReason::DeviceRx`](crate::ip_core::DropReason::DeviceRx).
    pub rx_dropped: u64,
    /// Packets successfully written to the device.
    pub tx_packets: u64,
    /// Bytes written to the device (after L2 framing).
    pub tx_bytes: u64,
    /// Packets lost to transmit-side I/O errors (the write itself
    /// failed) — a device-local contribution to
    /// [`DropReason::DeviceTx`](crate::ip_core::DropReason::DeviceTx).
    pub tx_errors: u64,
    /// Packets dropped after bounded backpressure retries (the device's
    /// transmit queue stayed full, e.g. `WouldBlock` on a socket buffer)
    /// — the other device-local contribution to
    /// [`DropReason::DeviceTx`](crate::ip_core::DropReason::DeviceTx),
    /// kept separate so the ledger names the real cause.
    pub tx_dropped: u64,
    /// Sizes of the receive batches the device delivered (frames per
    /// `rx_batch` call that returned at least one frame).
    pub rx_batch: crate::obs::Histogram,
    /// Sizes of the transmit batches handed to the device.
    pub tx_batch: crate::obs::Histogram,
}

impl DeviceStats {
    /// Fold another device's counters into this one (the "total" row of
    /// the `devices` report).
    pub fn absorb(&mut self, other: &DeviceStats) {
        self.rx_packets += other.rx_packets;
        self.rx_bytes += other.rx_bytes;
        self.rx_errors += other.rx_errors;
        self.rx_dropped += other.rx_dropped;
        self.tx_packets += other.tx_packets;
        self.tx_bytes += other.tx_bytes;
        self.tx_errors += other.tx_errors;
        self.tx_dropped += other.tx_dropped;
        self.rx_batch.absorb(&other.rx_batch);
        self.tx_batch.absorb(&other.tx_batch);
    }
}

/// Supervision state of a bound network device — the third tier of the
/// Healthy→Degraded→Quarantined architecture (plugins, shards, devices).
/// Lives here so the control plane can render it without knowing the
/// supervising I/O plane's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceHealth {
    /// The I/O plane runs without device supervision (the default).
    #[default]
    Unsupervised,
    /// Serving, no concerning error/stall pattern.
    Healthy,
    /// Serving, but its error window or rx-stall streak crossed the
    /// degradation threshold (or it is on post-reopen probation).
    Degraded,
    /// Taken off the wire: ingress skipped, egress counted as device-tx
    /// drops, awaiting a `reopen()` attempt under capped backoff.
    Quarantined,
}

impl std::fmt::Display for DeviceHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeviceHealth::Unsupervised => "unsupervised",
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Degraded => "degraded",
            DeviceHealth::Quarantined => "quarantined",
        })
    }
}

/// One row of the pmgr `devices` report: a bound network device and its
/// counters.
#[derive(Debug, Clone)]
pub struct DeviceRow {
    /// Device name (backend-chosen, e.g. `udp0`, `tap0`, `pcap:replay`).
    pub name: String,
    /// The router interface the device is bound to.
    pub iface: IfIndex,
    /// The device's I/O counters.
    pub stats: DeviceStats,
    /// Supervision health ([`DeviceHealth::Unsupervised`] when the I/O
    /// plane runs without a device supervisor).
    pub health: DeviceHealth,
    /// Times the device was quarantined.
    pub quarantines: u64,
    /// Successful quarantine→reopen cycles.
    pub reopens: u64,
}

/// A trace event with its origin: `None` on a single router, `Some(shard)`
/// on a parallel data plane.
#[derive(Debug, Clone)]
pub struct ShardTraceEvent {
    /// Which shard recorded the event (None = unsharded router).
    pub shard: Option<usize>,
    /// The event.
    pub event: TraceEvent,
}

/// The control-plane surface `pmgr` (and the daemons) drive. One
/// implementation per data-plane shape; the command language is identical
/// over both.
pub trait ControlPlane {
    /// `modload <name>`.
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError>;
    /// `modunload <name>`.
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError>;
    /// Forced `modunload`: free live instances and their bindings first.
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError>;
    /// Standardized / plugin-specific message dispatch.
    fn cp_send_message(&mut self, plugin: &str, msg: PluginMsg)
        -> Result<PluginReply, PluginError>;
    /// Add a core route.
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex);
    /// Remove a core route.
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool;
    /// Enable/disable a gate.
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool);
    /// Attach a default egress scheduler to an interface.
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError>;
    /// Installed filters at a gate, human-readable.
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String>;
    /// Live instances, human-readable.
    fn cp_describe_instances(&self) -> Vec<String>;
    /// Supervision state, labelled by shard where applicable.
    fn cp_health_reports(&self) -> Vec<ShardHealthReport>;
    /// Loaded plugin names.
    fn cp_loaded_plugins(&self) -> Vec<String>;
    /// Statistics rows: the merged total first, then any per-shard
    /// breakdown.
    fn cp_stats_rows(&self) -> Vec<StatsRow>;
    /// Metrics rows: the merged registry snapshot first, then any
    /// per-shard breakdown.
    fn cp_metrics_rows(&self) -> Vec<MetricsRow>;
    /// Turn the event tracer on or off (all categories) without stopping
    /// the data path.
    fn cp_trace_enable(&mut self, on: bool);
    /// The last `n` trace events (per shard on a parallel data plane),
    /// labelled by origin, oldest first within each origin.
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent>;
    /// Per-shard supervision state (`pmgr shards`). Empty on a single
    /// (unsharded) router. Takes `&mut self` because reading status is
    /// also the watchdog's opportunity to harvest dead shards and fire
    /// due restarts.
    fn cp_shard_status(&mut self) -> Vec<ShardStatus> {
        Vec::new()
    }
    /// Operator-forced restart of one shard (`pmgr shard restart <i>`):
    /// quarantine the current incarnation immediately and rebuild it from
    /// the command journal, skipping the backoff wait.
    fn cp_shard_restart(&mut self, _shard: usize) -> Result<String, PluginError> {
        Err(PluginError::Busy("no data-plane shards".to_string()))
    }
    /// Deterministic fault injection (`pmgr shard kill <i>`): panic the
    /// shard's worker thread at its next message, exercising the whole
    /// containment → quarantine → journal-rebuild path.
    fn cp_shard_kill(&mut self, _shard: usize) -> Result<String, PluginError> {
        Err(PluginError::Busy("no data-plane shards".to_string()))
    }
    /// Bound network devices (`pmgr devices`): one row per device, in
    /// binding order. Empty unless the plane runs under an `IoPlane`
    /// (the bare routers have no devices).
    fn cp_device_rows(&self) -> Vec<DeviceRow> {
        Vec::new()
    }
}

impl ControlPlane for Router {
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.load_plugin(name)
    }
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.unload_plugin(name)
    }
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.force_unload_plugin(name)
    }
    fn cp_send_message(
        &mut self,
        plugin: &str,
        msg: PluginMsg,
    ) -> Result<PluginReply, PluginError> {
        self.send_message(plugin, msg)
    }
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.add_route(addr, prefix_len, tx_if)
    }
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool {
        self.remove_route(addr, prefix_len)
    }
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool) {
        self.set_gate_enabled(gate, enabled)
    }
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError> {
        self.set_default_scheduler(iface, plugin, id)
    }
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String> {
        self.describe_filters(gate)
    }
    fn cp_describe_instances(&self) -> Vec<String> {
        self.describe_instances()
    }
    fn cp_health_reports(&self) -> Vec<ShardHealthReport> {
        self.health_reports()
            .into_iter()
            .map(|report| ShardHealthReport {
                shard: None,
                report,
            })
            .collect()
    }
    fn cp_loaded_plugins(&self) -> Vec<String> {
        self.loader.loaded()
    }
    fn cp_stats_rows(&self) -> Vec<StatsRow> {
        vec![StatsRow {
            label: "total".to_string(),
            data: self.stats(),
            flows: self.flow_stats(),
        }]
    }
    fn cp_metrics_rows(&self) -> Vec<MetricsRow> {
        vec![MetricsRow {
            label: "total".to_string(),
            metrics: self.metrics_snapshot(),
        }]
    }
    fn cp_trace_enable(&mut self, on: bool) {
        self.tracer_mut().set_enabled(on);
    }
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent> {
        self.tracer()
            .dump(n)
            .into_iter()
            .map(|event| ShardTraceEvent { shard: None, event })
            .collect()
    }
}

/// One shard's answer to a control fan-out, by shard index. `Down` and
/// `Unresponsive` are the partial-reply cases: the command could not be
/// delivered (shard dead/quarantined) or its reply never came back
/// within the fan-out timeout (shard wedged mid-message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ShardAnswer<R> {
    /// The shard ran the command and replied.
    Ok(R),
    /// The shard was not serving — the command was never delivered. The
    /// journal rebuild replays it when the shard returns.
    Down,
    /// Delivered but no reply within the timeout (stalled shard).
    Unresponsive,
}

impl<R> ShardAnswer<R> {
    fn label(&self) -> &'static str {
        match self {
            ShardAnswer::Ok(_) => "ok",
            ShardAnswer::Down => "down",
            ShardAnswer::Unresponsive => "unresponsive",
        }
    }
}

/// Aggregate per-shard unit results: the logical operation succeeded iff
/// it succeeded on every *responsive* shard; the first failure is the
/// reported one. Down/unresponsive shards don't veto — the command is in
/// the journal and the rebuild replays it — but an all-missing fan-out is
/// an error.
pub(crate) fn merge_unit(
    answers: Vec<(usize, ShardAnswer<Result<(), PluginError>>)>,
) -> Result<(), PluginError> {
    let mut any_ok = false;
    for (_, a) in answers {
        if let ShardAnswer::Ok(r) = a {
            r?;
            any_ok = true;
        }
    }
    if any_ok {
        Ok(())
    } else {
        Err(PluginError::Busy(
            "no responsive data-plane shards".to_string(),
        ))
    }
}

/// Aggregate per-shard replies into the single reply the operator sees.
///
/// Shards execute identical command sequences, so structured replies
/// (instance ids, filter ids) are expected to agree — any divergence is
/// surfaced as an error rather than silently picking one shard's answer.
/// Plugin-specific `Text` replies may legitimately differ per shard
/// (e.g. per-shard packet counters); those are joined with a shard label
/// per line, and shards that could not answer contribute a
/// `[shard i] unresponsive` / `[shard i] down` row instead of wedging
/// the whole reply.
pub(crate) fn merge_replies(
    answers: Vec<(usize, ShardAnswer<Result<PluginReply, PluginError>>)>,
) -> Result<PluginReply, PluginError> {
    let mut oks: Vec<(usize, PluginReply)> = Vec::with_capacity(answers.len());
    let mut missing: Vec<(usize, &'static str)> = Vec::new();
    for (i, a) in answers {
        match a {
            ShardAnswer::Ok(r) => oks.push((i, r?)),
            other => missing.push((i, other.label())),
        }
    }
    let Some((_, first)) = oks.first().cloned() else {
        return Err(PluginError::Busy(
            "no responsive data-plane shards".to_string(),
        ));
    };
    let all_equal = oks.iter().all(|(_, r)| *r == first);
    if all_equal && missing.is_empty() {
        return Ok(first);
    }
    if oks.iter().all(|(_, r)| matches!(r, PluginReply::Text(_))) {
        let mut rows: Vec<(usize, String)> = oks
            .iter()
            .map(|(i, r)| match r {
                PluginReply::Text(t) => (*i, format!("[shard {i}] {t}")),
                _ => unreachable!("checked all-Text above"),
            })
            .collect();
        rows.extend(
            missing
                .iter()
                .map(|(i, why)| (*i, format!("[shard {i}] {why}"))),
        );
        rows.sort_by_key(|(i, _)| *i);
        let joined = rows
            .into_iter()
            .map(|(_, row)| row)
            .collect::<Vec<_>>()
            .join("\n");
        return Ok(PluginReply::Text(joined));
    }
    if all_equal {
        // Structured replies agree on every responsive shard; the missing
        // shards will be rebuilt from the journal to the same answer.
        return Ok(first);
    }
    Err(PluginError::Busy(format!(
        "control fan-out diverged across shards: {oks:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok<R>(i: usize, r: R) -> (usize, ShardAnswer<Result<R, PluginError>>) {
        (i, ShardAnswer::Ok(Ok(r)))
    }

    #[test]
    fn unit_first_error_wins() {
        assert!(merge_unit(vec![ok(0, ()), ok(1, ())]).is_ok());
        let e = merge_unit(vec![
            ok(0, ()),
            (1, ShardAnswer::Ok(Err(PluginError::Busy("x".into())))),
            (2, ShardAnswer::Ok(Err(PluginError::Busy("y".into())))),
        ])
        .unwrap_err();
        assert_eq!(e, PluginError::Busy("x".into()));
    }

    #[test]
    fn unit_missing_shards_do_not_veto() {
        assert!(merge_unit(vec![ok(0, ()), (1, ShardAnswer::Down)]).is_ok());
        assert!(merge_unit(vec![(0, ShardAnswer::Down), (1, ShardAnswer::Unresponsive)]).is_err());
    }

    #[test]
    fn equal_replies_collapse() {
        let r = merge_replies(vec![
            ok(0, PluginReply::InstanceCreated(InstanceId(3))),
            ok(1, PluginReply::InstanceCreated(InstanceId(3))),
        ])
        .unwrap();
        assert_eq!(r, PluginReply::InstanceCreated(InstanceId(3)));
    }

    #[test]
    fn equal_replies_collapse_past_a_down_shard() {
        let r = merge_replies(vec![
            ok(0, PluginReply::InstanceCreated(InstanceId(3))),
            (1, ShardAnswer::Down),
            ok(2, PluginReply::InstanceCreated(InstanceId(3))),
        ])
        .unwrap();
        assert_eq!(r, PluginReply::InstanceCreated(InstanceId(3)));
    }

    #[test]
    fn divergent_texts_join_with_shard_labels() {
        let r = merge_replies(vec![
            ok(0, PluginReply::Text("pkts=1".into())),
            ok(1, PluginReply::Text("pkts=2".into())),
        ])
        .unwrap();
        assert_eq!(
            r,
            PluginReply::Text("[shard 0] pkts=1\n[shard 1] pkts=2".into())
        );
    }

    #[test]
    fn unresponsive_shard_becomes_a_labelled_row() {
        let r = merge_replies(vec![
            ok(0, PluginReply::Text("pkts=1".into())),
            (1, ShardAnswer::Unresponsive),
            (2, ShardAnswer::Down),
        ])
        .unwrap();
        assert_eq!(
            r,
            PluginReply::Text("[shard 0] pkts=1\n[shard 1] unresponsive\n[shard 2] down".into())
        );
    }

    #[test]
    fn divergent_ids_are_an_error() {
        let r = merge_replies(vec![
            ok(0, PluginReply::InstanceCreated(InstanceId(1))),
            ok(1, PluginReply::InstanceCreated(InstanceId(2))),
        ]);
        assert!(matches!(r, Err(PluginError::Busy(_))));
    }

    #[test]
    fn empty_shard_set_is_an_error() {
        assert!(merge_replies(vec![]).is_err());
        assert!(merge_unit(vec![]).is_err());
    }
}
