//! Sharded parallel data plane: flow-affine worker shards behind the
//! paper's single-router model.
//!
//! The paper's router is deliberately single-threaded: gates, the AIU
//! flow table, and plugin soft state are all manipulated without locks,
//! which is exactly what makes the fast path fast. [`ParallelRouter`]
//! scales that design out instead of up: it runs N complete
//! single-threaded [`Router`]s — each with its own AIU, flow table,
//! gates, and plugin instances — on N worker threads, and steers every
//! packet to the shard owning its flow (`flow_hash(five-tuple) % N`,
//! see [`dispatch`]). No data-path state is ever shared, so no data-path
//! lock exists; per-flow packet order is preserved because one flow
//! always lives on one shard.
//!
//! The control plane stays single. Every `pmgr` command fans out to all
//! shards through the same per-shard FIFO as the packets (so
//! command/packet ordering per shard matches issue order) and the
//! replies are merged back into one answer ([`control`]). Shards apply
//! identical command sequences, so per-shard PCU instance ids and AIU
//! filter ids stay in lockstep and an operator-visible id means the same
//! logical object everywhere.
//!
//! Egress is re-serialized: shards push transmitted packets onto one
//! shared collector channel and the dispatcher buckets them per output
//! interface. Since a flow is pinned to one shard and each shard emits in
//! processing order, per-flow order on the wire matches the
//! single-threaded router exactly.

pub mod control;
pub mod dispatch;
pub mod shard;

pub use control::{ControlPlane, MetricsRow, ShardHealthReport, ShardTraceEvent, StatsRow};
pub use dispatch::{shard_for_packet, shard_for_tuple};
pub use shard::{ShardCtx, ShardMsg, ShardReport};

use crate::gate::Gate;
use crate::ip_core::DataPathStats;
use crate::loader::PluginLoader;
use crate::message::{PluginMsg, PluginReply};
use crate::obs::{MetricsRegistry, MetricsSnapshot};
use crate::plugin::{InstanceId, PluginError};
use crate::router::{Router, RouterConfig};
use control::{merge_replies, merge_unit};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use rp_classifier::flow_table::FlowTableStats;
use rp_packet::mbuf::IfIndex;
use rp_packet::Mbuf;
use shard::{run_shard, ControlFn, ShardHandle};
use std::net::IpAddr;
use std::sync::Arc;

// The whole design depends on Router moving into worker threads; fail at
// compile time (not deep inside thread::spawn) if a !Send field sneaks in.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Router>();
};

/// Configuration for a [`ParallelRouter`].
#[derive(Debug, Clone)]
pub struct ParallelRouterConfig {
    /// Number of worker shards (each a complete single-threaded router).
    pub shards: usize,
    /// Per-shard router configuration (interfaces, gates, flow table…).
    pub router: RouterConfig,
    /// Depth of each shard's ingress FIFO. A full FIFO back-pressures the
    /// dispatcher (blocking send), mirroring a bounded input queue.
    pub ingress_depth: usize,
}

impl Default for ParallelRouterConfig {
    fn default() -> Self {
        ParallelRouterConfig {
            shards: 4,
            router: RouterConfig::default(),
            ingress_depth: 1024,
        }
    }
}

/// N flow-affine router shards behind the single-router interface.
///
/// Packets enter through [`receive`](ParallelRouter::receive), control
/// through [`ControlPlane`] (or [`control_map`](ParallelRouter::control_map)
/// directly), and egress leaves through
/// [`take_tx`](ParallelRouter::take_tx) after a
/// [`flush`](ParallelRouter::flush).
pub struct ParallelRouter {
    handles: Vec<ShardHandle>,
    interfaces: usize,
    /// Kept so `egress_rx` never disconnects while shards are live; the
    /// shards hold clones.
    _egress_tx: Sender<(IfIndex, Mbuf)>,
    egress_rx: Receiver<(IfIndex, Mbuf)>,
    /// Per-interface egress buckets, filled from the collector.
    pending: Vec<Vec<Mbuf>>,
}

impl ParallelRouter {
    /// Build the shard array. Each shard's router is constructed here on
    /// the caller thread — sharing the plugin factory table of
    /// `template` (the paper's single on-disk module set) — and then
    /// moved onto its worker thread.
    pub fn new(cfg: ParallelRouterConfig, template: &PluginLoader) -> Self {
        let shards = cfg.shards.max(1);
        let (egress_tx, egress_rx) = unbounded();
        let mut handles = Vec::with_capacity(shards);
        for index in 0..shards {
            let mut router = Router::new(cfg.router.clone());
            router.loader = template.share_factories();
            let ctx = ShardCtx {
                index,
                router,
                busy_ns: 0,
                packets: 0,
            };
            let (tx, rx) = bounded(cfg.ingress_depth.max(1));
            let egress = egress_tx.clone();
            let join = std::thread::Builder::new()
                .name(format!("rp-shard-{index}"))
                .spawn(move || run_shard(ctx, rx, egress))
                .ok();
            handles.push(ShardHandle { tx, join });
        }
        ParallelRouter {
            handles,
            interfaces: cfg.router.interfaces,
            _egress_tx: egress_tx,
            egress_rx,
            pending: (0..cfg.router.interfaces).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// The shard `mbuf` would be dispatched to.
    pub fn shard_of(&self, mbuf: &Mbuf) -> usize {
        shard_for_packet(mbuf, self.handles.len())
    }

    /// Dispatch one ingress packet to its flow's shard. Returns the shard
    /// index. Blocks if that shard's ingress FIFO is full (bounded-queue
    /// back-pressure).
    pub fn receive(&self, mbuf: Mbuf) -> usize {
        let s = self.shard_of(&mbuf);
        let _ = self.handles[s].tx.send(ShardMsg::Packet(mbuf));
        s
    }

    /// Quiesce: block until every shard has fully processed everything
    /// sent before this call, then drain the egress collector.
    pub fn flush(&mut self) {
        let (tx, rx) = unbounded::<()>();
        let mut expected = 0usize;
        for h in &self.handles {
            if h.tx.send(ShardMsg::Barrier(tx.clone())).is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        for _ in 0..expected {
            if rx.recv().is_err() {
                break;
            }
        }
        self.drain_egress();
    }

    /// Move everything on the shared egress collector into the
    /// per-interface buckets.
    fn drain_egress(&mut self) {
        for (iface, pkt) in self.egress_rx.try_iter() {
            let i = iface as usize;
            if i < self.pending.len() {
                self.pending[i].push(pkt);
            }
        }
    }

    /// Take the packets transmitted on `iface` since the last call.
    /// Call [`flush`](ParallelRouter::flush) first for a complete view of
    /// in-flight traffic.
    pub fn take_tx(&mut self, iface: IfIndex) -> Vec<Mbuf> {
        self.drain_egress();
        match self.pending.get_mut(iface as usize) {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Run `f` on every shard (on the shard's own thread, in FIFO order
    /// with that shard's packets) and collect the results in shard-index
    /// order. This is the primitive every control-plane fan-out is built
    /// on. Shards that have died are skipped.
    pub fn control_map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut ShardCtx) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<(usize, R)>();
        for h in &self.handles {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let cmd: ControlFn = Box::new(move |ctx: &mut ShardCtx| {
                let index = ctx.index;
                let r = f(ctx);
                let _ = tx.send((index, r));
            });
            let _ = h.tx.send(ShardMsg::Control(cmd));
        }
        drop(tx);
        // iter() ends once every shard has run (and dropped) its closure;
        // a dead shard drops the un-run closure, releasing its tx clone,
        // so this cannot deadlock.
        let mut out: Vec<(usize, R)> = rx.iter().collect();
        out.sort_by_key(|(i, _)| *i);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Advance the logical clock on every shard (paper: timeouts and
    /// idle-flow reclamation run off the router clock).
    pub fn set_time_ns(&self, now_ns: u64) {
        self.control_map(move |ctx| ctx.router.set_time_ns(now_ns));
    }

    /// Assign an address to `iface` on every shard.
    pub fn set_interface_addr(&self, iface: IfIndex, addr: IpAddr) {
        self.control_map(move |ctx| ctx.router.set_interface_addr(iface, addr));
    }

    /// Reclaim idle flows on every shard; returns the total reclaimed.
    pub fn expire_idle_flows(&self, max_idle_ns: u64) -> usize {
        self.control_map(move |ctx| ctx.router.expire_idle_flows(max_idle_ns))
            .into_iter()
            .sum()
    }

    /// Merged data-path counters across all shards.
    pub fn stats(&self) -> DataPathStats {
        let mut total = DataPathStats::default();
        for s in self.control_map(|ctx| ctx.router.stats()) {
            total.absorb(&s);
        }
        total
    }

    /// Merged flow-cache counters across all shards.
    pub fn flow_stats(&self) -> FlowTableStats {
        let mut total = FlowTableStats::default();
        for s in self.control_map(|ctx| ctx.router.flow_stats()) {
            total.absorb(&s);
        }
        total
    }

    /// Merged metrics registry across all shards.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut total = MetricsRegistry::default();
        for s in self.control_map(|ctx| ctx.router.metrics_snapshot()) {
            total.absorb(&s);
        }
        total
    }

    /// Per-shard statistics snapshots (packets, busy time, counters).
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.control_map(|ctx| ctx.report())
    }

    /// Number of interfaces (identical on every shard).
    pub fn interface_count(&self) -> usize {
        self.interfaces
    }
}

impl Drop for ParallelRouter {
    fn drop(&mut self) {
        for h in &self.handles {
            let _ = h.tx.send(ShardMsg::Shutdown);
        }
        for h in &mut self.handles {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
    }
}

impl ControlPlane for ParallelRouter {
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let name = name.to_string();
        merge_unit(self.control_map(move |ctx| ctx.router.load_plugin(&name)))
    }
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let name = name.to_string();
        merge_unit(self.control_map(move |ctx| ctx.router.unload_plugin(&name)))
    }
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let name = name.to_string();
        merge_unit(self.control_map(move |ctx| ctx.router.force_unload_plugin(&name)))
    }
    fn cp_send_message(
        &mut self,
        plugin: &str,
        msg: PluginMsg,
    ) -> Result<PluginReply, PluginError> {
        let plugin = plugin.to_string();
        merge_replies(self.control_map(move |ctx| ctx.router.send_message(&plugin, msg.clone())))
    }
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.control_map(move |ctx| ctx.router.add_route(addr, prefix_len, tx_if));
    }
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool {
        self.control_map(move |ctx| ctx.router.remove_route(addr, prefix_len))
            .into_iter()
            .any(|removed| removed)
    }
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool) {
        self.control_map(move |ctx| ctx.router.set_gate_enabled(gate, enabled));
    }
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError> {
        let plugin = plugin.to_string();
        merge_unit(
            self.control_map(move |ctx| ctx.router.set_default_scheduler(iface, &plugin, id)),
        )
    }
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String> {
        // Filter tables are in lockstep across shards; shard 0's view is
        // the logical router's view.
        self.control_map(move |ctx| ctx.router.describe_filters(gate))
            .into_iter()
            .next()
            .unwrap_or_default()
    }
    fn cp_describe_instances(&self) -> Vec<String> {
        self.control_map(|ctx| ctx.router.describe_instances())
            .into_iter()
            .next()
            .unwrap_or_default()
    }
    fn cp_health_reports(&self) -> Vec<ShardHealthReport> {
        let mut out = Vec::new();
        for (shard, reports) in self
            .control_map(|ctx| ctx.router.health_reports())
            .into_iter()
            .enumerate()
        {
            for report in reports {
                out.push(ShardHealthReport {
                    shard: Some(shard),
                    report,
                });
            }
        }
        out
    }
    fn cp_loaded_plugins(&self) -> Vec<String> {
        self.control_map(|ctx| ctx.router.loader.loaded())
            .into_iter()
            .next()
            .unwrap_or_default()
    }
    fn cp_stats_rows(&self) -> Vec<StatsRow> {
        let per_shard = self.control_map(|ctx| (ctx.router.stats(), ctx.router.flow_stats()));
        let mut total_data = DataPathStats::default();
        let mut total_flows = FlowTableStats::default();
        for (d, f) in &per_shard {
            total_data.absorb(d);
            total_flows.absorb(f);
        }
        let mut rows = vec![StatsRow {
            label: "total".to_string(),
            data: total_data,
            flows: total_flows,
        }];
        for (i, (d, f)) in per_shard.into_iter().enumerate() {
            rows.push(StatsRow {
                label: format!("shard {i}"),
                data: d,
                flows: f,
            });
        }
        rows
    }
    fn cp_metrics_rows(&self) -> Vec<MetricsRow> {
        let per_shard = self.control_map(|ctx| ctx.router.metrics_snapshot());
        let mut total = MetricsRegistry::default();
        for m in &per_shard {
            total.absorb(m);
        }
        let mut rows = vec![MetricsRow {
            label: "total".to_string(),
            metrics: total,
        }];
        for (i, m) in per_shard.into_iter().enumerate() {
            rows.push(MetricsRow {
                label: format!("shard {i}"),
                metrics: m,
            });
        }
        rows
    }
    fn cp_trace_enable(&mut self, on: bool) {
        self.control_map(move |ctx| ctx.router.tracer_mut().set_enabled(on));
    }
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent> {
        let mut out = Vec::new();
        for (shard, events) in self
            .control_map(move |ctx| ctx.router.tracer().dump(n))
            .into_iter()
            .enumerate()
        {
            for event in events {
                out.push(ShardTraceEvent {
                    shard: Some(shard),
                    event,
                });
            }
        }
        out
    }
}
