//! Sharded parallel data plane: flow-affine worker shards behind the
//! paper's single-router model.
//!
//! The paper's router is deliberately single-threaded: gates, the AIU
//! flow table, and plugin soft state are all manipulated without locks,
//! which is exactly what makes the fast path fast. [`ParallelRouter`]
//! scales that design out instead of up: it runs N complete
//! single-threaded [`Router`]s — each with its own AIU, flow table,
//! gates, and plugin instances — on N worker threads, and steers every
//! packet to the shard owning its flow (`flow_hash(five-tuple) % N`,
//! see [`dispatch`]). No data-path state is ever shared, so no data-path
//! lock exists; per-flow packet order is preserved because one flow
//! always lives on one shard.
//!
//! The control plane stays single. Every `pmgr` command fans out to all
//! shards through the same per-shard FIFO as the packets (so
//! command/packet ordering per shard matches issue order) and the
//! replies are merged back into one answer ([`control`]). Shards apply
//! identical command sequences, so per-shard PCU instance ids and AIU
//! filter ids stay in lockstep and an operator-visible id means the same
//! logical object everywhere.
//!
//! Egress is re-serialized: shards push transmitted packets onto one
//! shared collector channel and the dispatcher buckets them per output
//! interface. Since a flow is pinned to one shard and each shard emits in
//! processing order, per-flow order on the wire matches the
//! single-threaded router exactly.
//!
//! # Shard supervision
//!
//! The shard workers are supervised with the same
//! Healthy→Degraded→Quarantined machine the plugin supervisor applies to
//! instances, one level up:
//!
//! * **Containment** — the shard loop runs under `catch_unwind`
//!   ([`shard::run_shard`]); a panic escaping a control closure kills
//!   only that shard. The dispatcher detects dead or disconnected
//!   workers and quarantines them.
//! * **Liveness** — each worker writes a heartbeat (busy flag +
//!   timestamp); the dispatcher's watchdog classifies a worker stuck
//!   inside one message longer than
//!   [`ParallelRouterConfig::stall_timeout`] as stalled, abandons that
//!   incarnation, and every control fan-out / barrier wait carries a
//!   timeout with per-shard partial replies (`[shard i] unresponsive`)
//!   instead of blocking forever.
//! * **Rebuild** — every state-mutating control command is recorded in a
//!   [`CommandJournal`]; a quarantined shard is restarted (capped
//!   exponential backoff from the router's [`FaultPolicy`], here in
//!   *real* time — heartbeats of OS threads are wall-clock) by replaying
//!   the journal into a fresh [`Router`], which returns its instance and
//!   filter ids to lockstep with the survivors. Flow-cache soft state is
//!   *not* restored: the next packet of each flow re-classifies, exactly
//!   the paper's first-packet path.
//! * **Overload** — dispatch to a full or unhealthy shard is
//!   policy-driven: bounded wait ([`ParallelRouterConfig::overload_wait`])
//!   then a counted drop ([`DropReason::ShardOverload`] /
//!   [`DropReason::ShardDown`]). Packets lost inside a fault window
//!   (queued on a dead shard, stranded in its scheduler queues) are
//!   re-accounted as `ShardDown` when the incarnation's final report is
//!   harvested, so the merged counters never lose a packet silently.

pub mod control;
pub mod dispatch;
pub mod journal;
pub mod shard;

pub use control::{
    ControlPlane, MetricsRow, ShardHealthReport, ShardStatus, ShardTraceEvent, StatsRow,
};
pub use dispatch::{shard_for_packet, shard_for_tuple, FlowSteer, SteerConfig, SteerStats};
pub use journal::{CommandJournal, JournaledCmd};
pub use shard::{ShardCtx, ShardMsg, ShardReport};

use crate::gate::Gate;
use crate::ip_core::{DataPathStats, DropReason};
use crate::loader::PluginLoader;
use crate::message::{PluginMsg, PluginReply};
use crate::obs::{drop_reason_index, MetricsRegistry, MetricsSnapshot};
use crate::plugin::{InstanceId, PluginError};
use crate::router::{Router, RouterConfig};
use crate::supervisor::{FaultPolicy, HealthState};
use control::{merge_replies, merge_unit, ShardAnswer};
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rp_classifier::flow_table::FlowTableStats;
use rp_packet::mbuf::IfIndex;
use rp_packet::{FlowTuple, Mbuf, MbufPool, PoolStats};
use shard::{
    run_shard, ControlFn, EgressSink, ShardFinal, ShardReceiver, ShardSender, ShardShared,
};
use std::net::IpAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// The whole design depends on Router moving into worker threads; fail at
// compile time (not deep inside thread::spawn) if a !Send field sneaks in.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Router>();
};

/// Check one shard's health every this many dispatched packets, round
/// robin, so stalls are detected even when all traffic flows to other
/// shards (one atomic load + `Instant::now` per stride — off the per-
/// packet hot path).
const WATCHDOG_STRIDE: u64 = 64;

/// Granularity of the timed waits in `flush`/fan-out collection: long
/// enough to stay off the scheduler's back, short enough that stall
/// detection latency is dominated by `stall_timeout`, not the slice.
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// How packets travel from the dispatcher to the shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// The vendored channel stub (a mutex+condvar queue over
    /// `std::sync::mpsc`). Kept as the bench baseline and a fallback;
    /// retired from the default hot path.
    Channel,
    /// Lock-free SPSC rings (`rp_ring`): one ring per shard with a
    /// doorbell for idle parking, plus batched egress carriers — no lock
    /// and no syscall on the steady-state packet path.
    #[default]
    Ring,
}

/// Configuration for a [`ParallelRouter`].
#[derive(Debug, Clone)]
pub struct ParallelRouterConfig {
    /// Number of worker shards (each a complete single-threaded router).
    pub shards: usize,
    /// Per-shard router configuration (interfaces, gates, flow table…).
    /// Its [`FaultPolicy`] also governs shard restarts: `restart`,
    /// `max_restarts`, and the capped exponential backoff — with the
    /// backoff nanoseconds interpreted as *real* time at the shard level
    /// (worker heartbeats are wall-clock, unlike the simulated clock the
    /// plugin supervisor runs on).
    pub router: RouterConfig,
    /// Depth of each shard's ingress FIFO.
    pub ingress_depth: usize,
    /// How long one message may keep a worker continuously busy before
    /// the watchdog classifies the shard as stalled and abandons it.
    pub stall_timeout: Duration,
    /// How long `receive` waits on a full ingress FIFO before shedding
    /// the packet as [`DropReason::ShardOverload`]. The bounded wait
    /// preserves the back-pressure behaviour under transient bursts
    /// while keeping the ingress thread live under sustained overload.
    pub overload_wait: Duration,
    /// Optional load-aware flow placement ([`FlowSteer`]). `None` (the
    /// default) keeps pure hash placement; `Some` pins each new flow at
    /// first sight, steering flows that arrive while their hash-home
    /// shard is hot onto a less-loaded alternate. Per-flow affinity (and
    /// therefore per-flow order) is preserved either way.
    pub steer: Option<SteerConfig>,
    /// Dispatcher→shard transport (see [`DispatchMode`]); the overload,
    /// watchdog, and conservation semantics are identical in both modes.
    pub dispatch: DispatchMode,
}

impl Default for ParallelRouterConfig {
    fn default() -> Self {
        ParallelRouterConfig {
            shards: 4,
            router: RouterConfig::default(),
            ingress_depth: 1024,
            stall_timeout: Duration::from_millis(500),
            overload_wait: Duration::from_millis(2),
            steer: None,
            dispatch: DispatchMode::default(),
        }
    }
}

fn initial_backoff(policy: &FaultPolicy) -> Duration {
    Duration::from_nanos(policy.restart_backoff_ns.max(1))
}

/// The dispatcher's handle to one shard worker plus its supervision
/// state. All fields live on the dispatcher side (or in the shared
/// heartbeat block), so health decisions never require the worker thread
/// to cooperate.
struct ShardSlot {
    tx: ShardSender,
    join: Option<JoinHandle<ShardFinal>>,
    shared: Arc<ShardShared>,
    health: HealthState,
    /// Completed restarts of this shard index.
    restarts: u32,
    /// Next restart delay (capped doubling).
    next_backoff: Duration,
    /// When the pending restart becomes due.
    restart_at: Option<Instant>,
    /// Out of restart budget (or policy forbids restarts): permanently
    /// quarantined, traffic shed as `ShardDown`.
    gave_up: bool,
    last_fault: Option<String>,
    /// Packets dispatched to the *current* incarnation.
    sent: u64,
    shed_overload: u64,
    shed_down: u64,
}

impl ShardSlot {
    /// Serving = accepts packets and control (Healthy, or Degraded after
    /// a restart). Quarantined shards are bypassed with counted sheds.
    fn serving(&self) -> bool {
        matches!(self.health, HealthState::Healthy | HealthState::Degraded)
    }
}

/// An abandoned incarnation whose thread hasn't exited yet (stalled, or
/// still draining). Harvested for its final accounting report when it
/// does; `sent` is the packet count dispatched to it, against which
/// queue loss is computed.
struct Zombie {
    shard: usize,
    join: JoinHandle<ShardFinal>,
    sent: u64,
}

/// N flow-affine router shards behind the single-router interface.
///
/// Packets enter through [`receive`](ParallelRouter::receive), control
/// through [`ControlPlane`] (or [`control_map`](ParallelRouter::control_map)
/// directly), and egress leaves through
/// [`take_tx`](ParallelRouter::take_tx) after a
/// [`flush`](ParallelRouter::flush).
pub struct ParallelRouter {
    cfg: ParallelRouterConfig,
    /// The shared plugin factory registry rebuilds draw from (the
    /// paper's single on-disk module set).
    template: PluginLoader,
    slots: Vec<ShardSlot>,
    zombies: Vec<Zombie>,
    /// Replayable record of every state-mutating control command.
    journal: CommandJournal,
    /// Heartbeat timestamps are relative to this.
    epoch: Instant,
    interfaces: usize,
    /// Kept so `egress_rx` never disconnects while shards are live (the
    /// shards hold clones); also the source for rebuilt shards' senders.
    egress_tx: Sender<(IfIndex, Mbuf)>,
    egress_rx: Receiver<(IfIndex, Mbuf)>,
    /// Ring-mode egress: shards send whole carrier `Vec`s of transmitted
    /// packets (one channel operation per egress drain instead of one
    /// per packet) and the dispatcher returns the emptied carriers on
    /// the scrap side, so the steady state allocates nothing.
    egress_batch_tx: Sender<Vec<(IfIndex, Mbuf)>>,
    egress_batch_rx: Receiver<Vec<(IfIndex, Mbuf)>>,
    egress_scrap_tx: Sender<Vec<(IfIndex, Mbuf)>>,
    egress_scrap_rx: Receiver<Vec<(IfIndex, Mbuf)>>,
    /// Return path for emptied batch carrier `Vec`s: shards send the
    /// drained vector back here after processing a [`ShardMsg::Batch`],
    /// and the dispatcher reuses it for a later batch — steady-state
    /// batched dispatch allocates no carriers.
    scrap_tx: Sender<Vec<Mbuf>>,
    scrap_rx: Receiver<Vec<Mbuf>>,
    /// Emptied carriers ready for reuse (fed from `scrap_rx` plus the
    /// caller-supplied input vectors of past `receive_batch` calls).
    spare_batches: Vec<Vec<Mbuf>>,
    /// One bucket per shard, reused across `receive_batch` calls to
    /// group a mixed batch by destination shard without allocating.
    group_scratch: Vec<Vec<Mbuf>>,
    /// Dispatcher-side buffer pool: sources ingress mbufs
    /// ([`mbuf_with`](ParallelRouter::mbuf_with)) and reabsorbs shed
    /// packets and transmitted packets the driver hands back
    /// ([`recycle_mbuf`](ParallelRouter::recycle_mbuf)).
    pool: MbufPool,
    /// Per-interface egress buckets, filled from the collector.
    pending: Vec<Vec<Mbuf>>,
    /// Dispatcher-side counters: sheds, plus the absorbed history of
    /// exited shard incarnations (their final reports), so restarting a
    /// shard never erases its packets from the merged totals.
    local_stats: DataPathStats,
    local_flows: FlowTableStats,
    local_metrics: MetricsRegistry,
    /// Forwarded packets later refused by an egress device
    /// ([`note_device_tx_drops`](ParallelRouter::note_device_tx_drops)).
    /// Shard counters are absorbed read-only, so this correction is
    /// subtracted from the merged `forwarded` at read time.
    device_tx_unforwarded: u64,
    watchdog_tick: u64,
    /// Load-aware flow placement, when configured. Dispatcher-side only:
    /// shards never see it, so the lock-free shard fast path is
    /// untouched.
    steer: Option<FlowSteer>,
    /// Reusable buffer for the watchdog-cadence ingress-depth sample fed
    /// to the steerer (no per-sample `Vec`).
    depth_scratch: Vec<usize>,
}

impl ParallelRouter {
    /// Build the shard array. Each shard's router is constructed here on
    /// the caller thread — sharing the plugin factory table of
    /// `template` (the paper's single on-disk module set) — and then
    /// moved onto its worker thread.
    pub fn new(cfg: ParallelRouterConfig, template: &PluginLoader) -> Self {
        let shards = cfg.shards.max(1);
        let (egress_tx, egress_rx) = unbounded();
        let (egress_batch_tx, egress_batch_rx) = unbounded();
        let (egress_scrap_tx, egress_scrap_rx) = unbounded();
        let (scrap_tx, scrap_rx) = unbounded();
        let epoch = Instant::now();
        let interfaces = cfg.router.interfaces;
        let mut pr = ParallelRouter {
            template: template.share_factories(),
            slots: Vec::with_capacity(shards),
            zombies: Vec::new(),
            journal: CommandJournal::default(),
            epoch,
            interfaces,
            egress_tx,
            egress_rx,
            egress_batch_tx,
            egress_batch_rx,
            egress_scrap_tx,
            egress_scrap_rx,
            scrap_tx,
            scrap_rx,
            spare_batches: Vec::new(),
            group_scratch: (0..shards).map(|_| Vec::new()).collect(),
            pool: MbufPool::default(),
            pending: (0..interfaces).map(|_| Vec::new()).collect(),
            local_stats: DataPathStats::default(),
            local_flows: FlowTableStats::default(),
            local_metrics: MetricsRegistry::default(),
            device_tx_unforwarded: 0,
            watchdog_tick: 0,
            steer: cfg.steer.map(|sc| FlowSteer::new(sc, shards)),
            depth_scratch: vec![0; shards],
            cfg,
        };
        for index in 0..shards {
            let slot = pr.spawn_slot(index);
            pr.slots.push(slot);
        }
        pr
    }

    /// Construct and launch one shard worker (initial spawn and rebuild
    /// share this). The router replays the journal before the thread
    /// starts, so the worker joins the array already in lockstep.
    fn spawn_slot(&mut self, index: usize) -> ShardSlot {
        let mut router = Router::new(self.cfg.router.clone());
        router.loader = self.template.share_factories();
        let replay_errors = self.journal.replay(&mut router);
        // Replay runs against empty queues and must not emit; clear the
        // tx logs so a rebuilt shard cannot replay phantom transmissions.
        for i in 0..router.interface_count() {
            let _ = router.take_tx(i as IfIndex);
        }
        let ctx = ShardCtx {
            index,
            router,
            busy_ns: 0,
            packets: 0,
            cpu_clock_errors: 0,
        };
        let (tx, rx, egress) = match self.cfg.dispatch {
            DispatchMode::Channel => {
                let (tx, rx) = bounded(self.cfg.ingress_depth.max(1));
                (
                    ShardSender::Channel(tx),
                    ShardReceiver::Channel(rx),
                    EgressSink::PerPacket(self.egress_tx.clone()),
                )
            }
            DispatchMode::Ring => {
                let (p, c) = rp_ring::spsc(self.cfg.ingress_depth.max(1));
                (
                    ShardSender::Ring(std::sync::Mutex::new(p)),
                    ShardReceiver::Ring {
                        rx: c,
                        pending: std::collections::VecDeque::new(),
                    },
                    EgressSink::Batched {
                        tx: self.egress_batch_tx.clone(),
                        scrap: self.egress_scrap_rx.clone(),
                        scratch: Vec::new(),
                    },
                )
            }
        };
        let shared = Arc::new(ShardShared::new(self.epoch));
        let scrap = self.scrap_tx.clone();
        let worker_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name(format!("rp-shard-{index}"))
            .spawn(move || run_shard(ctx, rx, egress, scrap, worker_shared))
            .ok();
        let policy = &self.cfg.router.fault_policy;
        let spawn_failed = join.is_none();
        let mut last_fault = None;
        if spawn_failed {
            last_fault = Some("worker thread spawn failed".to_string());
        } else if replay_errors > 0 {
            // Expected to mirror the original per-shard outcomes (see
            // the journal docs); noted for the operator, not a fault.
            last_fault = Some(format!(
                "journal replay reported {replay_errors} command errors"
            ));
        }
        ShardSlot {
            tx,
            join,
            shared,
            health: if spawn_failed {
                HealthState::Quarantined
            } else {
                HealthState::Healthy
            },
            restarts: 0,
            next_backoff: initial_backoff(policy),
            restart_at: None,
            gave_up: spawn_failed,
            last_fault,
            sent: 0,
            shed_overload: 0,
            shed_down: 0,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The shard `mbuf` would be dispatched to by pure hash placement.
    /// With load-aware steering configured the live dispatch decision
    /// ([`receive`](ParallelRouter::receive)) may differ for flows pinned
    /// off a hot shard; it is still per-flow stable.
    pub fn shard_of(&self, mbuf: &Mbuf) -> usize {
        shard_for_packet(mbuf, self.slots.len())
    }

    /// The live dispatch decision for `mbuf`: the flow's pinned shard
    /// when steering is configured, hash placement otherwise (and for
    /// packets with no extractable five-tuple).
    fn route_shard(&mut self, mbuf: &Mbuf) -> usize {
        match (&mut self.steer, FlowTuple::from_mbuf(mbuf)) {
            (Some(st), Ok(t)) => st.steer(&t),
            _ => shard_for_packet(mbuf, self.slots.len()),
        }
    }

    /// Load-aware placement statistics, when steering is configured.
    pub fn steer_stats(&self) -> Option<SteerStats> {
        self.steer.as_ref().map(|s| s.stats())
    }

    /// Current ingress-FIFO occupancy of every shard, as seen from the
    /// dispatcher (ring mode reads the SPSC cursors; channel mode has no
    /// length and reads 0).
    pub fn shard_depths(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.tx.depth()).collect()
    }

    /// Feed the steerer the observed ingress-queue depths. Runs at
    /// watchdog cadence (once per [`WATCHDOG_STRIDE`] dispatched
    /// packets), so the fast path pays N relaxed cursor reads every 64
    /// packets, not per packet.
    fn sample_depths(&mut self) {
        if self.steer.is_none() {
            return;
        }
        for (slot, d) in self.slots.iter().zip(self.depth_scratch.iter_mut()) {
            *d = slot.tx.depth();
        }
        if let Some(st) = self.steer.as_mut() {
            st.set_depths(&self.depth_scratch);
        }
    }

    /// State-mutating control commands recorded for shard rebuilds.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    // ---- supervision machinery ------------------------------------

    /// Fold an exited incarnation's final report into the dispatcher's
    /// retained history, re-accounting every packet that entered the
    /// shard but never reached the wire as a `ShardDown` drop:
    /// `lost_queue` (dispatched, never processed) and `stranded`
    /// (counted forwarded into a scheduler queue that died with the
    /// worker).
    fn absorb_final(&mut self, shard: usize, sent: u64, f: ShardFinal) {
        let lost_queue = sent.saturating_sub(f.report.data.received);
        self.local_stats.absorb(&f.report.data);
        // Like the queue gauges below: the dead incarnation's flow-table
        // occupancy gauges (live/allocated) describe records that died
        // with the worker. Only its counters carry forward, so the merged
        // occupancy always reflects tables that actually exist.
        let mut flows = f.report.flows;
        flows.live = 0;
        flows.allocated = 0;
        self.local_flows.absorb(&flows);
        let mut metrics = f.metrics;
        // The dead incarnation's queue-depth gauges describe queues that
        // no longer exist; their content is re-accounted as stranded.
        for d in metrics.queue_depth.iter_mut() {
            *d = 0;
        }
        self.local_metrics.absorb(&metrics);
        let lost = lost_queue + f.stranded;
        self.local_stats.forwarded = self.local_stats.forwarded.saturating_sub(f.stranded);
        self.local_stats.received += lost_queue;
        self.local_stats.dropped_shard_down += lost;
        self.local_metrics.drops[drop_reason_index(DropReason::ShardDown)] += lost;
        if let Some(slot) = self.slots.get_mut(shard) {
            slot.shed_down += lost;
        }
    }

    /// Collect final reports from abandoned incarnations whose threads
    /// have since exited (e.g. a wedge that released).
    fn harvest_zombies(&mut self) {
        let mut i = 0;
        while i < self.zombies.len() {
            if self.zombies[i].join.is_finished() {
                let z = self.zombies.swap_remove(i);
                if let Ok(f) = z.join.join() {
                    self.absorb_final(z.shard, z.sent, f);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Record a shard fault and schedule (or refuse) its restart per the
    /// fault policy's capped exponential backoff.
    fn note_fault(&mut self, shard: usize, why: String, now: Instant) {
        let policy = self.cfg.router.fault_policy.clone();
        let slot = &mut self.slots[shard];
        slot.health = HealthState::Quarantined;
        slot.last_fault = Some(why);
        if !policy.restart || slot.restarts >= policy.max_restarts {
            slot.gave_up = true;
            slot.restart_at = None;
        } else {
            slot.restart_at = Some(now + slot.next_backoff);
            let cap = Duration::from_nanos(policy.restart_backoff_cap_ns.max(1));
            slot.next_backoff = (slot.next_backoff * 2).min(cap);
        }
    }

    /// Give up on the current incarnation without waiting for its thread:
    /// flag it abandoned (so it exits at the next message boundary),
    /// disconnect its FIFO, and park the join handle for later harvest.
    fn abandon(&mut self, shard: usize, why: String, now: Instant) {
        self.slots[shard].shared.mark_abandoned();
        // Replacing (and dropping) our sender disconnects the worker's
        // recv — in ring mode the producer's drop also rings the doorbell
        // — so an *idle* abandoned worker exits immediately; a wedged
        // one exits when whatever wedged it returns.
        let dead_tx = ShardSender::dead(self.cfg.dispatch == DispatchMode::Ring);
        drop(std::mem::replace(&mut self.slots[shard].tx, dead_tx));
        if let Some(join) = self.slots[shard].join.take() {
            self.zombies.push(Zombie {
                shard,
                join,
                sent: self.slots[shard].sent,
            });
        }
        self.slots[shard].sent = 0;
        self.note_fault(shard, why, now);
    }

    /// One watchdog pass over one shard: harvest it if dead, abandon it
    /// if stalled, rebuild it if its restart is due.
    fn check_shard(&mut self, shard: usize) {
        self.harvest_zombies();
        let now = Instant::now();
        if self.slots[shard]
            .join
            .as_ref()
            .is_some_and(|j| j.is_finished())
        {
            // The worker exited on its own: a panic escaped into the
            // shard loop (or the loop ended unexpectedly).
            let sent = self.slots[shard].sent;
            self.slots[shard].sent = 0;
            let why = match self.slots[shard].join.take() {
                Some(join) => match join.join() {
                    Ok(f) => {
                        let why = match &f.panic {
                            Some(msg) => format!("worker panicked: {msg}"),
                            None => "worker exited unexpectedly".to_string(),
                        };
                        self.absorb_final(shard, sent, f);
                        why
                    }
                    Err(_) => "worker thread aborted".to_string(),
                },
                None => return,
            };
            self.note_fault(shard, why, now);
            return;
        }
        if self.slots[shard].serving() {
            if let Some(busy) = self.slots[shard].shared.busy_for(now) {
                if busy >= self.cfg.stall_timeout {
                    self.abandon(
                        shard,
                        format!("stalled: busy {}ms inside one message", busy.as_millis()),
                        now,
                    );
                    return;
                }
            }
        }
        if self.slots[shard].restart_at.is_some_and(|t| now >= t) {
            self.rebuild_shard(shard);
        }
    }

    /// Watchdog pass over every shard (harvest dead, abandon stalled,
    /// fire due restarts). Runs opportunistically at every control
    /// fan-out, flush, and status read, plus round-robin from the packet
    /// path — there is no background thread.
    pub fn poll_shard_health(&mut self) {
        for s in 0..self.slots.len() {
            self.check_shard(s);
        }
    }

    /// Replace a quarantined shard with a fresh incarnation rebuilt from
    /// the command journal.
    fn rebuild_shard(&mut self, shard: usize) {
        // Make sure the previous incarnation can't race the replacement.
        self.slots[shard].shared.mark_abandoned();
        if let Some(join) = self.slots[shard].join.take() {
            self.zombies.push(Zombie {
                shard,
                join,
                sent: self.slots[shard].sent,
            });
        }
        let prior = &self.slots[shard];
        let (restarts, next_backoff, last_fault) =
            (prior.restarts, prior.next_backoff, prior.last_fault.clone());
        let mut fresh = self.spawn_slot(shard);
        if fresh.gave_up {
            // Spawn failure: keep the fault record, re-arm the backoff.
            self.slots[shard] = fresh;
            self.slots[shard].restarts = restarts;
            self.note_fault(
                shard,
                "worker thread spawn failed".to_string(),
                Instant::now(),
            );
            return;
        }
        fresh.health = HealthState::Degraded;
        fresh.restarts = restarts + 1;
        fresh.next_backoff = next_backoff;
        if fresh.last_fault.is_none() {
            fresh.last_fault = last_fault;
        }
        self.slots[shard] = fresh;
    }

    /// Count one shed packet at the dispatcher (the packet is dropped
    /// here, so the dispatcher also counts it received — the merged
    /// `received == forwarded + dropped + in-flight` invariant holds).
    fn shed(&mut self, shard: usize, reason: DropReason) {
        self.shed_n(shard, reason, 1);
    }

    /// [`shed`](ParallelRouter::shed) for a whole failed batch: every
    /// packet of the batch is counted, not just the carrier message.
    fn shed_n(&mut self, shard: usize, reason: DropReason, n: u64) {
        self.local_stats.received += n;
        match reason {
            DropReason::ShardOverload => {
                self.local_stats.dropped_shard_overload += n;
                self.slots[shard].shed_overload += n;
            }
            _ => {
                self.local_stats.dropped_shard_down += n;
                self.slots[shard].shed_down += n;
            }
        }
        self.local_metrics.drops[drop_reason_index(reason)] += n;
    }

    /// Recycle every packet of a batch that could not be dispatched and
    /// return its carrier to the spare stack.
    fn recycle_failed_batch(&mut self, mut batch: Vec<Mbuf>) {
        for pkt in batch.drain(..) {
            self.pool.recycle(pkt);
        }
        self.spare_batches.push(batch);
    }

    // ---- data path ------------------------------------------------

    /// Dispatch one ingress packet to its flow's shard. Returns the shard
    /// index. A full FIFO back-pressures for at most
    /// [`ParallelRouterConfig::overload_wait`], then the packet is shed
    /// as a counted [`DropReason::ShardOverload`]; a dead, stalled, or
    /// quarantined shard sheds immediately as [`DropReason::ShardDown`].
    pub fn receive(&mut self, mbuf: Mbuf) -> usize {
        let s = self.route_shard(&mbuf);
        self.watchdog_tick = self.watchdog_tick.wrapping_add(1);
        if self.watchdog_tick.is_multiple_of(WATCHDOG_STRIDE) && !self.slots.is_empty() {
            let t = ((self.watchdog_tick / WATCHDOG_STRIDE) as usize) % self.slots.len();
            self.check_shard(t);
            self.sample_depths();
        }
        if !self.slots[s].serving() {
            // A due restart can bring it back right now.
            self.check_shard(s);
        }
        if !self.slots[s].serving() {
            self.pool.recycle(mbuf);
            self.shed(s, DropReason::ShardDown);
            return s;
        }
        let mut msg = ShardMsg::Packet(mbuf);
        let mut deadline: Option<Instant> = None;
        loop {
            match self.slots[s].tx.try_send(msg) {
                Ok(()) => {
                    self.slots[s].sent += 1;
                    return s;
                }
                Err(TrySendError::Full(m)) => {
                    let now = Instant::now();
                    let dl = *deadline.get_or_insert(now + self.cfg.overload_wait);
                    // A persistently full FIFO may mean a wedged worker;
                    // give the watchdog a look before deciding.
                    self.check_shard(s);
                    if !self.slots[s].serving() {
                        if let ShardMsg::Packet(p) = m {
                            self.pool.recycle(p);
                        }
                        self.shed(s, DropReason::ShardDown);
                        return s;
                    }
                    if now >= dl {
                        if let ShardMsg::Packet(p) = m {
                            self.pool.recycle(p);
                        }
                        self.shed(s, DropReason::ShardOverload);
                        return s;
                    }
                    msg = m;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(m)) => {
                    self.check_shard(s);
                    if let ShardMsg::Packet(p) = m {
                        self.pool.recycle(p);
                    }
                    self.shed(s, DropReason::ShardDown);
                    return s;
                }
            }
        }
    }

    /// Dispatch a whole batch of ingress packets, grouping them by their
    /// flows' shards and sending **one** [`ShardMsg::Batch`] per shard
    /// touched — the channel send (and, on the worker side, the egress
    /// drain) is amortized over the batch while per-flow order is
    /// untouched (grouping is a stable partition and a flow maps to
    /// exactly one shard). Overload and health semantics per shard group
    /// match [`receive`](ParallelRouter::receive), with every packet of
    /// a failed group counted shed. Consumes the carrier `Vec`; get a
    /// recycled one from [`batch_carrier`](ParallelRouter::batch_carrier)
    /// to keep the steady state allocation-free. Returns the number of
    /// packets handed to shards (the rest were shed).
    pub fn receive_batch(&mut self, mut pkts: Vec<Mbuf>) -> usize {
        if pkts.is_empty() {
            self.spare_batches.push(pkts);
            return 0;
        }
        // Same watchdog cadence as the single-packet path: one shard
        // checked per WATCHDOG_STRIDE packets, here batched into at most
        // one check per call.
        let prev = self.watchdog_tick;
        self.watchdog_tick = prev.wrapping_add(pkts.len() as u64);
        if prev / WATCHDOG_STRIDE != self.watchdog_tick / WATCHDOG_STRIDE && !self.slots.is_empty()
        {
            let t = ((self.watchdog_tick / WATCHDOG_STRIDE) as usize) % self.slots.len();
            self.check_shard(t);
            self.sample_depths();
        }
        self.reclaim_scrap();
        let n = self.slots.len();
        if n == 1 {
            // Single shard: the input carrier is already the batch.
            return self.dispatch_batch(0, pkts);
        }
        for pkt in pkts.drain(..) {
            let s = self.route_shard(&pkt);
            self.group_scratch[s].push(pkt);
        }
        self.spare_batches.push(pkts);
        let mut accepted = 0;
        for s in 0..n {
            if self.group_scratch[s].is_empty() {
                continue;
            }
            let spare = self.spare_batches.pop().unwrap_or_default();
            let group = std::mem::replace(&mut self.group_scratch[s], spare);
            accepted += self.dispatch_batch(s, group);
        }
        accepted
    }

    /// Send one shard's batch with `receive`'s overload/health semantics.
    /// Returns the packets accepted; a failed batch is recycled and every
    /// packet in it is counted shed.
    fn dispatch_batch(&mut self, s: usize, batch: Vec<Mbuf>) -> usize {
        let len = batch.len();
        if len == 0 {
            self.spare_batches.push(batch);
            return 0;
        }
        if !self.slots[s].serving() {
            self.check_shard(s);
        }
        if !self.slots[s].serving() {
            self.recycle_failed_batch(batch);
            self.shed_n(s, DropReason::ShardDown, len as u64);
            return 0;
        }
        let mut msg = ShardMsg::Batch(batch);
        let mut deadline: Option<Instant> = None;
        loop {
            match self.slots[s].tx.try_send(msg) {
                Ok(()) => {
                    self.slots[s].sent += len as u64;
                    return len;
                }
                Err(TrySendError::Full(m)) => {
                    let now = Instant::now();
                    let dl = *deadline.get_or_insert(now + self.cfg.overload_wait);
                    self.check_shard(s);
                    if !self.slots[s].serving() {
                        if let ShardMsg::Batch(b) = m {
                            self.recycle_failed_batch(b);
                        }
                        self.shed_n(s, DropReason::ShardDown, len as u64);
                        return 0;
                    }
                    if now >= dl {
                        if let ShardMsg::Batch(b) = m {
                            self.recycle_failed_batch(b);
                        }
                        self.shed_n(s, DropReason::ShardOverload, len as u64);
                        return 0;
                    }
                    msg = m;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(m)) => {
                    self.check_shard(s);
                    if let ShardMsg::Batch(b) = m {
                        self.recycle_failed_batch(b);
                    }
                    self.shed_n(s, DropReason::ShardDown, len as u64);
                    return 0;
                }
            }
        }
    }

    /// Pull emptied carriers the shards have returned into the spare
    /// stack.
    fn reclaim_scrap(&mut self) {
        self.spare_batches.extend(self.scrap_rx.try_iter());
    }

    /// A carrier `Vec` for the next [`receive_batch`] — recycled from a
    /// previously dispatched batch when one has come back, fresh
    /// otherwise.
    pub fn batch_carrier(&mut self) -> Vec<Mbuf> {
        self.reclaim_scrap();
        self.spare_batches.pop().unwrap_or_default()
    }

    /// Build an ingress mbuf from the dispatcher's buffer pool (the
    /// parallel-plane counterpart of [`Router::mbuf_with`]).
    pub fn mbuf_with(&mut self, bytes: &[u8], rx_if: IfIndex) -> Mbuf {
        let mut m = self.pool.mbuf_from(bytes, rx_if);
        // Coarse ingress stamp for end-to-end sojourn accounting (the
        // I/O plane re-stamps per received batch; this covers synthetic
        // injectors that build mbufs directly).
        m.timestamp_ns = rp_packet::coarse_now_ns();
        m
    }

    /// Return a finished packet's backing buffer to the dispatcher pool
    /// (drivers call this after transmitting what `take_tx` returned).
    pub fn recycle_mbuf(&mut self, mbuf: Mbuf) {
        self.pool.recycle(mbuf);
    }

    /// The dispatcher pool's counters (shard routers' pools are reported
    /// through the merged metrics instead).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Deliver a control-path message to a serving shard with a bounded
    /// wait (a control message takes its FIFO place behind packets, but
    /// never wedges the dispatcher behind a stalled worker). Returns
    /// false when the shard stopped serving or stayed full past the
    /// stall timeout.
    fn send_control(&mut self, shard: usize, msg: ShardMsg) -> bool {
        let mut msg = msg;
        let deadline = Instant::now() + self.cfg.stall_timeout + self.cfg.stall_timeout;
        loop {
            if !self.slots[shard].serving() {
                return false;
            }
            match self.slots[shard].tx.try_send(msg) {
                Ok(()) => return true,
                Err(TrySendError::Full(m)) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                    self.check_shard(shard);
                    msg = m;
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.check_shard(shard);
                    return false;
                }
            }
        }
    }

    /// Quiesce: block until every *live* shard has fully processed
    /// everything sent before this call, then settle any fault window
    /// the flush uncovered, then drain the egress collector. A shard
    /// that dies or stalls mid-flush is quarantined by the watchdog and
    /// skipped instead of blocking the control plane forever.
    ///
    /// The settle phase makes `flush()` followed by
    /// [`stats`](ParallelRouter::stats) a conserving read: a worker that
    /// died during the window is harvested (its final accounting
    /// absorbed into the dispatcher totals) and a due restart completes
    /// before this returns. The wait is bounded by twice the stall
    /// timeout — a thread still wedged inside a plugin cannot be joined,
    /// and its counters stay deferred until it finally exits.
    pub fn flush(&mut self) {
        self.poll_shard_health();
        let (tx, rx) = unbounded::<usize>();
        let mut outstanding: Vec<usize> = Vec::new();
        for s in 0..self.slots.len() {
            if self.slots[s].serving() && self.send_control(s, ShardMsg::Barrier(tx.clone())) {
                outstanding.push(s);
            }
        }
        drop(tx);
        while !outstanding.is_empty() {
            match rx.recv_timeout(WAIT_SLICE) {
                Ok(i) => outstanding.retain(|&x| x != i),
                Err(RecvTimeoutError::Timeout) => {
                    // Keep waiting for live shards (they may simply have
                    // deep FIFOs); drop the ones the watchdog takes out.
                    for s in outstanding.clone() {
                        self.check_shard(s);
                        if !self.slots[s].serving() {
                            outstanding.retain(|&x| x != s);
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every pending barrier was dropped unrun.
                    for s in outstanding.drain(..) {
                        self.check_shard(s);
                    }
                }
            }
        }
        let deadline = Instant::now() + self.cfg.stall_timeout + self.cfg.stall_timeout;
        loop {
            self.poll_shard_health();
            let unresolved = !self.zombies.is_empty()
                || self.slots.iter().any(|s| {
                    s.restart_at.is_some() || s.join.as_ref().is_some_and(|j| j.is_finished())
                });
            if !unresolved || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.drain_egress();
    }

    /// Move everything on the shared egress collector into the
    /// per-interface buckets. Ring-mode carriers are drained whole and
    /// handed back to the shards for reuse.
    fn drain_egress(&mut self) {
        for (iface, pkt) in self.egress_rx.try_iter() {
            let i = iface as usize;
            if i < self.pending.len() {
                self.pending[i].push(pkt);
            }
        }
        while let Ok(mut carrier) = self.egress_batch_rx.try_recv() {
            for (iface, pkt) in carrier.drain(..) {
                let i = iface as usize;
                if i < self.pending.len() {
                    self.pending[i].push(pkt);
                }
            }
            let _ = self.egress_scrap_tx.send(carrier);
        }
    }

    /// Take the packets transmitted on `iface` since the last call.
    /// Call [`flush`](ParallelRouter::flush) first for a complete view of
    /// in-flight traffic.
    pub fn take_tx(&mut self, iface: IfIndex) -> Vec<Mbuf> {
        self.drain_egress();
        match self.pending.get_mut(iface as usize) {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Drain `iface`'s transmitted packets into `out`, preserving both
    /// the pending bucket's and `out`'s allocated capacity — the
    /// zero-allocation counterpart of [`take_tx`](ParallelRouter::take_tx)
    /// (mirrors [`Router::take_tx_into`]).
    pub fn take_tx_into(&mut self, iface: IfIndex, out: &mut Vec<Mbuf>) {
        self.drain_egress();
        if let Some(v) = self.pending.get_mut(iface as usize) {
            out.append(v);
        }
    }

    /// The dispatcher's buffer pool, for device drivers that acquire and
    /// recycle backing buffers directly (mirrors [`Router::pool_mut`]).
    pub fn pool_mut(&mut self) -> &mut rp_packet::pool::MbufPool {
        &mut self.pool
    }

    /// Account `n` frames a device's receive side dropped before they
    /// became IP packets. Counted dispatcher-side exactly like an
    /// overload shed ([`shed_n`](ParallelRouter::shed_n)): received and
    /// dropped in the same breath, so the merged
    /// `received == forwarded + Σdrops` invariant extends to the wire.
    pub fn note_device_rx_drops(&mut self, n: u64) {
        self.local_stats.received += n;
        self.local_stats.dropped_device_rx += n;
        self.local_metrics.drops[drop_reason_index(DropReason::DeviceRx)] += n;
    }

    /// Re-account `n` already-forwarded packets whose egress device
    /// refused to transmit them (same re-accounting the shard harvest
    /// does for stranded backlogs): they leave the merged `forwarded`
    /// total and land in the device-tx drop counter.
    pub fn note_device_tx_drops(&mut self, n: u64) {
        self.device_tx_unforwarded += n;
        self.local_stats.dropped_device_tx += n;
        self.local_metrics.drops[drop_reason_index(DropReason::DeviceTx)] += n;
    }

    // ---- control fan-out ------------------------------------------

    /// Run `f` on every serving shard (on the shard's own thread, in
    /// FIFO order with that shard's packets) and collect per-shard
    /// answers. Replies are awaited with a watchdog-supervised timeout:
    /// a shard that dies or stalls mid-command yields `Down` /
    /// `Unresponsive` instead of wedging the control plane.
    fn fanout<R, F>(&mut self, f: F) -> Vec<(usize, ShardAnswer<R>)>
    where
        R: Send + 'static,
        F: Fn(&mut ShardCtx) -> R + Send + Sync + 'static,
    {
        // Fire due restarts first so a rebuilt shard receives this
        // command through the fan-out (it is not yet in the journal).
        self.poll_shard_health();
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<(usize, R)>();
        let n = self.slots.len();
        let mut answers: Vec<Option<ShardAnswer<R>>> = (0..n).map(|_| None).collect();
        let mut outstanding: Vec<usize> = Vec::new();
        for (s, answer) in answers.iter_mut().enumerate() {
            if !self.slots[s].serving() {
                *answer = Some(ShardAnswer::Down);
                continue;
            }
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let cmd: ControlFn = Box::new(move |ctx: &mut ShardCtx| {
                let index = ctx.index;
                let r = f(ctx);
                let _ = tx.send((index, r));
            });
            if self.send_control(s, ShardMsg::Control(cmd)) {
                outstanding.push(s);
            } else {
                *answer = Some(ShardAnswer::Down);
            }
        }
        drop(tx);
        while !outstanding.is_empty() {
            match rx.recv_timeout(WAIT_SLICE) {
                Ok((i, r)) => {
                    answers[i] = Some(ShardAnswer::Ok(r));
                    outstanding.retain(|&x| x != i);
                }
                Err(RecvTimeoutError::Timeout) => {
                    for s in outstanding.clone() {
                        self.check_shard(s);
                        if !self.slots[s].serving() {
                            answers[s] = Some(ShardAnswer::Unresponsive);
                            outstanding.retain(|&x| x != s);
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    for s in outstanding.drain(..) {
                        self.check_shard(s);
                        answers[s] = Some(ShardAnswer::Down);
                    }
                }
            }
        }
        answers
            .into_iter()
            .enumerate()
            .map(|(i, a)| (i, a.unwrap_or(ShardAnswer::Down)))
            .collect()
    }

    /// Run `f` on every serving shard and collect the successful results
    /// in shard-index order (unresponsive shards are skipped). This is
    /// the primitive every control-plane fan-out is built on.
    pub fn control_map<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut ShardCtx) -> R + Send + Sync + 'static,
    {
        self.fanout(f)
            .into_iter()
            .filter_map(|(_, a)| match a {
                ShardAnswer::Ok(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Advance the logical clock on every shard (paper: timeouts and
    /// idle-flow reclamation run off the router clock). Only the
    /// high-water mark is kept for shard rebuilds.
    pub fn set_time_ns(&mut self, now_ns: u64) {
        self.journal.note_time(now_ns);
        self.control_map(move |ctx| ctx.router.set_time_ns(now_ns));
    }

    /// Assign an address to `iface` on every shard.
    pub fn set_interface_addr(&mut self, iface: IfIndex, addr: IpAddr) {
        self.control_map(move |ctx| ctx.router.set_interface_addr(iface, addr));
        self.journal
            .record(JournaledCmd::SetInterfaceAddr { iface, addr });
    }

    /// Reclaim idle flows on every shard; returns the total reclaimed.
    /// Not journaled: the flow cache is soft state a rebuilt shard
    /// regenerates from first packets.
    pub fn expire_idle_flows(&mut self, max_idle_ns: u64) -> usize {
        self.control_map(move |ctx| ctx.router.expire_idle_flows(max_idle_ns))
            .into_iter()
            .sum()
    }

    /// Merged data-path counters: all live shards, plus the dispatcher's
    /// own accounting (sheds and the retained history of exited
    /// incarnations).
    pub fn stats(&mut self) -> DataPathStats {
        let mut total = self.local_stats;
        for s in self.control_map(|ctx| ctx.router.stats()) {
            total.absorb(&s);
        }
        total.forwarded = total.forwarded.saturating_sub(self.device_tx_unforwarded);
        total
    }

    /// Merged data-path counters from `&self`: same merge as
    /// [`ParallelRouter::stats`] but via the read-only fan-out, so
    /// conservation checks and reporting don't need `&mut` access.
    pub fn stats_read(&self) -> DataPathStats {
        let mut total = self.local_stats;
        for (_, d) in self.read_all(|ctx| ctx.router.stats()) {
            total.absorb(&d);
        }
        total.forwarded = total.forwarded.saturating_sub(self.device_tx_unforwarded);
        total
    }

    /// Merged flow-cache counters across all shards (live + retired).
    pub fn flow_stats(&mut self) -> FlowTableStats {
        let mut total = self.local_flows;
        for s in self.control_map(|ctx| ctx.router.flow_stats()) {
            total.absorb(&s);
        }
        total
    }

    /// Merged metrics registry across all shards (live + retired + the
    /// dispatcher's shed counters).
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        let mut total = self.local_metrics;
        for s in self.control_map(|ctx| ctx.router.metrics_snapshot()) {
            total.absorb(&s);
        }
        // The dispatcher's own pool traffic (shard pools arrive through
        // the per-shard snapshots absorbed above).
        let p = self.pool.stats();
        total.mbuf_acquired += p.acquired;
        total.mbuf_recycled += p.recycled;
        total.mbuf_fresh += p.fresh;
        total
    }

    /// Per-shard statistics snapshots (packets, busy time, counters)
    /// from the shards that answered.
    pub fn shard_reports(&mut self) -> Vec<ShardReport> {
        self.control_map(|ctx| ctx.report())
    }

    /// Number of interfaces (identical on every shard).
    pub fn interface_count(&self) -> usize {
        self.interfaces
    }
}

impl Drop for ParallelRouter {
    fn drop(&mut self) {
        for slot in &self.slots {
            let _ = slot.tx.try_send(ShardMsg::Shutdown);
            // In case the FIFO was full or the worker is wedged: the
            // abandoned flag (plus the sender drop below) still ends the
            // loop at its next message boundary.
            slot.shared.mark_abandoned();
        }
        let mut joins: Vec<JoinHandle<ShardFinal>> = Vec::new();
        let ring = self.cfg.dispatch == DispatchMode::Ring;
        for slot in &mut self.slots {
            let dead_tx = ShardSender::dead(ring);
            drop(std::mem::replace(&mut slot.tx, dead_tx));
            if let Some(j) = slot.join.take() {
                joins.push(j);
            }
        }
        // Join what exits promptly; a thread still wedged in a plugin
        // after the grace period is detached rather than hanging the
        // caller forever.
        let deadline = Instant::now() + Duration::from_secs(2);
        for j in joins {
            loop {
                if j.is_finished() {
                    let _ = j.join();
                    break;
                }
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

impl ControlPlane for ParallelRouter {
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let arg = name.to_string();
        let r = merge_unit(self.fanout(move |ctx| ctx.router.load_plugin(&arg)));
        self.journal
            .record(JournaledCmd::LoadPlugin(name.to_string()));
        r
    }
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let arg = name.to_string();
        let r = merge_unit(self.fanout(move |ctx| ctx.router.unload_plugin(&arg)));
        self.journal
            .record(JournaledCmd::UnloadPlugin(name.to_string()));
        r
    }
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let arg = name.to_string();
        let r = merge_unit(self.fanout(move |ctx| ctx.router.force_unload_plugin(&arg)));
        self.journal
            .record(JournaledCmd::ForceUnloadPlugin(name.to_string()));
        r
    }
    fn cp_send_message(
        &mut self,
        plugin: &str,
        msg: PluginMsg,
    ) -> Result<PluginReply, PluginError> {
        let arg = plugin.to_string();
        let cloned = msg.clone();
        let r =
            merge_replies(self.fanout(move |ctx| ctx.router.send_message(&arg, cloned.clone())));
        self.journal.record(JournaledCmd::Message {
            plugin: plugin.to_string(),
            msg,
        });
        r
    }
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.control_map(move |ctx| ctx.router.add_route(addr, prefix_len, tx_if));
        self.journal.record(JournaledCmd::AddRoute {
            addr,
            prefix_len,
            tx_if,
        });
    }
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool {
        let removed = self
            .control_map(move |ctx| ctx.router.remove_route(addr, prefix_len))
            .into_iter()
            .any(|removed| removed);
        self.journal
            .record(JournaledCmd::RemoveRoute { addr, prefix_len });
        removed
    }
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool) {
        self.control_map(move |ctx| ctx.router.set_gate_enabled(gate, enabled));
        self.journal
            .record(JournaledCmd::SetGateEnabled { gate, enabled });
    }
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError> {
        let arg = plugin.to_string();
        let r =
            merge_unit(self.fanout(move |ctx| ctx.router.set_default_scheduler(iface, &arg, id)));
        self.journal.record(JournaledCmd::SetDefaultScheduler {
            iface,
            plugin: plugin.to_string(),
            id,
        });
        r
    }
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String> {
        // Filter tables are in lockstep across shards; any serving
        // shard's view is the logical router's view. `&self` here, so
        // use a direct one-shot fan-out without the watchdog.
        self.read_first(move |ctx| ctx.router.describe_filters(gate))
            .unwrap_or_default()
    }
    fn cp_describe_instances(&self) -> Vec<String> {
        self.read_first(|ctx| ctx.router.describe_instances())
            .unwrap_or_default()
    }
    fn cp_health_reports(&self) -> Vec<ShardHealthReport> {
        let mut out = Vec::new();
        for (shard, reports) in self.read_all(|ctx| ctx.router.health_reports()) {
            for report in reports {
                out.push(ShardHealthReport {
                    shard: Some(shard),
                    report,
                });
            }
        }
        out
    }
    fn cp_loaded_plugins(&self) -> Vec<String> {
        self.read_first(|ctx| ctx.router.loader.loaded())
            .unwrap_or_default()
    }
    fn cp_stats_rows(&self) -> Vec<StatsRow> {
        let per_shard = self.read_all(|ctx| (ctx.router.stats(), ctx.router.flow_stats()));
        let mut total_data = self.local_stats;
        let mut total_flows = self.local_flows;
        for (_, (d, f)) in &per_shard {
            total_data.absorb(d);
            total_flows.absorb(f);
        }
        total_data.forwarded = total_data
            .forwarded
            .saturating_sub(self.device_tx_unforwarded);
        let mut rows = vec![StatsRow {
            label: "total".to_string(),
            data: total_data,
            flows: total_flows,
        }];
        for (i, (d, f)) in per_shard.into_iter() {
            rows.push(StatsRow {
                label: format!("shard {i}"),
                data: d,
                flows: f,
            });
        }
        rows
    }
    fn cp_metrics_rows(&self) -> Vec<MetricsRow> {
        let per_shard = self.read_all(|ctx| ctx.router.metrics_snapshot());
        let mut total = self.local_metrics;
        for (_, m) in &per_shard {
            total.absorb(m);
        }
        let p = self.pool.stats();
        total.mbuf_acquired += p.acquired;
        total.mbuf_recycled += p.recycled;
        total.mbuf_fresh += p.fresh;
        let mut rows = vec![MetricsRow {
            label: "total".to_string(),
            metrics: total,
        }];
        for (i, m) in per_shard.into_iter() {
            rows.push(MetricsRow {
                label: format!("shard {i}"),
                metrics: m,
            });
        }
        rows
    }
    fn cp_trace_enable(&mut self, on: bool) {
        self.control_map(move |ctx| ctx.router.tracer_mut().set_enabled(on));
        self.journal.record(JournaledCmd::TraceEnable(on));
    }
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent> {
        let mut out = Vec::new();
        for (shard, events) in self.read_all(move |ctx| ctx.router.tracer().dump(n)) {
            for event in events {
                out.push(ShardTraceEvent {
                    shard: Some(shard),
                    event,
                });
            }
        }
        out
    }
    fn cp_shard_status(&mut self) -> Vec<ShardStatus> {
        self.poll_shard_health();
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| ShardStatus {
                shard: i,
                health: slot.health,
                restarts: slot.restarts,
                sent: slot.sent,
                processed: slot.shared.processed(),
                shed_overload: slot.shed_overload,
                shed_down: slot.shed_down,
                restart_pending: slot.restart_at.is_some(),
                last_fault: slot.last_fault.clone(),
            })
            .collect()
    }
    fn cp_shard_restart(&mut self, shard: usize) -> Result<String, PluginError> {
        if shard >= self.slots.len() {
            return Err(PluginError::BadConfig(format!("no shard {shard}")));
        }
        self.check_shard(shard);
        if self.slots[shard].join.is_some() {
            self.abandon(shard, "operator restart".to_string(), Instant::now());
        }
        // Operator intervention overrides an exhausted restart budget and
        // skips the backoff wait.
        self.slots[shard].gave_up = false;
        self.slots[shard].next_backoff = initial_backoff(&self.cfg.router.fault_policy);
        self.rebuild_shard(shard);
        if self.slots[shard].serving() {
            Ok(format!(
                "shard {shard} restarted ({} journal commands replayed)",
                self.journal.len()
            ))
        } else {
            Err(PluginError::Busy(format!(
                "shard {shard} restart failed: {}",
                self.slots[shard]
                    .last_fault
                    .clone()
                    .unwrap_or_else(|| "unknown".to_string())
            )))
        }
    }
    fn cp_shard_kill(&mut self, shard: usize) -> Result<String, PluginError> {
        if shard >= self.slots.len() {
            return Err(PluginError::BadConfig(format!("no shard {shard}")));
        }
        if !self.slots[shard].serving() {
            return Err(PluginError::Busy(format!("shard {shard} is not serving")));
        }
        let cmd: ControlFn = Box::new(move |ctx: &mut ShardCtx| {
            panic!("injected kill (pmgr shard kill {})", ctx.index);
        });
        if self.send_control(shard, ShardMsg::Control(cmd)) {
            Ok(format!("kill injected into shard {shard}"))
        } else {
            Err(PluginError::Busy(format!(
                "shard {shard} did not accept the kill"
            )))
        }
    }
}

impl ParallelRouter {
    /// Read-only fan-out for `&self` trait methods: best-effort, skips
    /// non-serving shards, and bounds the wait so a shard that wedges
    /// mid-read cannot hang the control plane (the next `&mut`
    /// entry point's watchdog will quarantine it).
    fn read_all<R, F>(&self, f: F) -> Vec<(usize, R)>
    where
        R: Send + 'static,
        F: Fn(&mut ShardCtx) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<(usize, R)>();
        let mut expected = 0usize;
        for slot in self.slots.iter().filter(|s| s.serving()) {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let cmd: ControlFn = Box::new(move |ctx: &mut ShardCtx| {
                let index = ctx.index;
                let r = f(ctx);
                let _ = tx.send((index, r));
            });
            if slot.tx.try_send(ShardMsg::Control(cmd)).is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        let deadline = Instant::now() + self.cfg.stall_timeout + self.cfg.stall_timeout;
        let mut out: Vec<(usize, R)> = Vec::with_capacity(expected);
        while out.len() < expected {
            match rx.recv_timeout(WAIT_SLICE) {
                Ok(pair) => out.push(pair),
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out.sort_by_key(|(i, _)| *i);
        out
    }

    /// First serving shard's answer to a read-only fan-out (lockstep
    /// state, e.g. filter tables, is identical everywhere).
    fn read_first<R, F>(&self, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: Fn(&mut ShardCtx) -> R + Send + Sync + 'static,
    {
        self.read_all(f).into_iter().next().map(|(_, r)| r)
    }
}
