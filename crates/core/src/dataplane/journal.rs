//! Control-plane command journal: the dispatcher's replayable record of
//! every state-mutating command it fanned out to the shards.
//!
//! Shards stay interchangeable because they all apply the identical
//! command sequence — that is what keeps per-shard PCU instance ids and
//! AIU filter ids in lockstep. A restarted shard therefore cannot simply
//! be handed a fresh [`Router`]: its id counters would start from zero
//! and every operator-visible id would mean a different object on that
//! shard. Instead the dispatcher records the full mutating command
//! history here and replays it into the fresh router before the shard
//! rejoins the array.
//!
//! Replay is deliberately *outcome-blind*: commands are recorded whether
//! or not they succeeded, because a command that failed identically on
//! every shard (unknown plugin, bad config…) consumed no ids — and one
//! that failed for a *stateful* reason (duplicate load) must fail again
//! on replay to keep the sequence aligned. Determinism of the router's
//! control path is what makes this sound.
//!
//! What is *not* journaled, by design:
//!
//! * the logical clock — only the latest value matters, so it is kept as
//!   a single high-water mark ([`CommandJournal::note_time`]) and
//!   applied before replay;
//! * flow-cache/filter soft state and idle-flow expiry — the paper's
//!   flow cache is soft state rebuilt by first-packet classification,
//!   and a restarted shard re-classifying its flows' next packets is
//!   exactly the paper-faithful behaviour;
//! * packet traffic and per-shard counters — the data path is not
//!   control state.

use crate::gate::Gate;
use crate::message::PluginMsg;
use crate::plugin::InstanceId;
use crate::router::Router;
use rp_packet::mbuf::IfIndex;
use std::net::IpAddr;

/// One recorded state-mutating control command, shard-agnostic (the same
/// record replays into any shard).
#[derive(Debug, Clone)]
pub enum JournaledCmd {
    /// `modload` — plugin registration with the loader.
    LoadPlugin(String),
    /// `modunload`.
    UnloadPlugin(String),
    /// Forced `modunload` (frees live instances and bindings first).
    ForceUnloadPlugin(String),
    /// Any plugin message: instance create/free, filter (de)registration,
    /// bindings, custom messages. These are the id-allocating commands.
    Message {
        /// Target plugin name.
        plugin: String,
        /// The message (cloned per shard on fan-out and on replay).
        msg: PluginMsg,
    },
    /// Core routing table insert.
    AddRoute {
        /// Destination network.
        addr: IpAddr,
        /// Prefix length.
        prefix_len: u8,
        /// Egress interface.
        tx_if: IfIndex,
    },
    /// Core routing table removal.
    RemoveRoute {
        /// Destination network.
        addr: IpAddr,
        /// Prefix length.
        prefix_len: u8,
    },
    /// Gate enable/disable.
    SetGateEnabled {
        /// The gate.
        gate: Gate,
        /// New state.
        enabled: bool,
    },
    /// Default egress scheduler attachment.
    SetDefaultScheduler {
        /// Interface.
        iface: IfIndex,
        /// Scheduler plugin name.
        plugin: String,
        /// Scheduler instance id.
        id: InstanceId,
    },
    /// Interface address assignment.
    SetInterfaceAddr {
        /// Interface.
        iface: IfIndex,
        /// Address.
        addr: IpAddr,
    },
    /// Tracer on/off.
    TraceEnable(bool),
}

/// The dispatcher's append-only journal plus the clock high-water mark.
///
/// The journal grows with the number of control commands issued over the
/// router's lifetime — control traffic is operator-scale (paper: tens of
/// commands), not packet-scale, so no compaction is attempted.
#[derive(Debug, Clone, Default)]
pub struct CommandJournal {
    cmds: Vec<JournaledCmd>,
    last_now_ns: Option<u64>,
}

impl CommandJournal {
    /// Append one command.
    pub fn record(&mut self, cmd: JournaledCmd) {
        self.cmds.push(cmd);
    }

    /// Remember the latest logical-clock value (not journaled as a
    /// command; only the high-water mark is replayed).
    pub fn note_time(&mut self, now_ns: u64) {
        self.last_now_ns = Some(self.last_now_ns.unwrap_or(0).max(now_ns));
    }

    /// Commands recorded so far.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// Replay the full history into a freshly constructed router,
    /// returning how many commands reported an error. Errors are
    /// *expected* to reproduce the original per-shard outcomes (see the
    /// module docs), so the count is informational — surfaced in the
    /// shard's restart note, not treated as a rebuild failure.
    pub fn replay(&self, router: &mut Router) -> usize {
        if let Some(now) = self.last_now_ns {
            router.set_time_ns(now);
        }
        let mut errors = 0usize;
        for cmd in &self.cmds {
            let failed = match cmd {
                JournaledCmd::LoadPlugin(name) => router.load_plugin(name).is_err(),
                JournaledCmd::UnloadPlugin(name) => router.unload_plugin(name).is_err(),
                JournaledCmd::ForceUnloadPlugin(name) => router.force_unload_plugin(name).is_err(),
                JournaledCmd::Message { plugin, msg } => {
                    router.send_message(plugin, msg.clone()).is_err()
                }
                JournaledCmd::AddRoute {
                    addr,
                    prefix_len,
                    tx_if,
                } => {
                    router.add_route(*addr, *prefix_len, *tx_if);
                    false
                }
                JournaledCmd::RemoveRoute { addr, prefix_len } => {
                    router.remove_route(*addr, *prefix_len);
                    false
                }
                JournaledCmd::SetGateEnabled { gate, enabled } => {
                    router.set_gate_enabled(*gate, *enabled);
                    false
                }
                JournaledCmd::SetDefaultScheduler { iface, plugin, id } => {
                    router.set_default_scheduler(*iface, plugin, *id).is_err()
                }
                JournaledCmd::SetInterfaceAddr { iface, addr } => {
                    router.set_interface_addr(*iface, *addr);
                    false
                }
                JournaledCmd::TraceEnable(on) => {
                    router.tracer_mut().set_enabled(*on);
                    false
                }
            };
            if failed {
                errors += 1;
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::PluginReply;
    use crate::plugins::register_builtin_factories;
    use crate::router::RouterConfig;
    use std::net::Ipv4Addr;

    fn fresh_router() -> Router {
        let mut r = Router::new(RouterConfig::default());
        register_builtin_factories(&mut r.loader);
        r
    }

    fn journal_with_fw_instance() -> CommandJournal {
        let mut j = CommandJournal::default();
        j.record(JournaledCmd::LoadPlugin("firewall".into()));
        j.record(JournaledCmd::Message {
            plugin: "firewall".into(),
            msg: PluginMsg::CreateInstance {
                config: String::new(),
            },
        });
        j.record(JournaledCmd::AddRoute {
            addr: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)),
            prefix_len: 8,
            tx_if: 1,
        });
        j
    }

    #[test]
    fn replay_reproduces_instance_ids() {
        // Drive a reference router through the journaled history, then
        // replay the same journal into a fresh router: the *next*
        // id-allocating command must agree on both.
        let j = journal_with_fw_instance();
        let mut original = fresh_router();
        assert_eq!(j.replay(&mut original), 0);
        let mut rebuilt = fresh_router();
        assert_eq!(j.replay(&mut rebuilt), 0);

        let next = PluginMsg::CreateInstance {
            config: String::new(),
        };
        let a = original.send_message("firewall", next.clone()).unwrap();
        let b = rebuilt.send_message("firewall", next).unwrap();
        assert_eq!(a, b);
        assert!(matches!(a, PluginReply::InstanceCreated(_)));
    }

    #[test]
    fn failed_commands_fail_identically_on_replay() {
        let mut j = CommandJournal::default();
        j.record(JournaledCmd::LoadPlugin("no-such-plugin".into()));
        j.record(JournaledCmd::LoadPlugin("firewall".into()));
        let mut r = fresh_router();
        assert_eq!(j.replay(&mut r), 1);
        let mut r2 = fresh_router();
        assert_eq!(j.replay(&mut r2), 1);
        assert_eq!(r.loader.loaded(), r2.loader.loaded());
    }

    #[test]
    fn clock_high_water_mark_survives_replay() {
        let mut j = CommandJournal::default();
        j.note_time(5);
        j.note_time(1_000);
        j.note_time(500);
        let mut r = Router::new(RouterConfig::default());
        j.replay(&mut r);
        assert_eq!(r.now_ns(), 1_000);
    }
}
