//! The assembled Extended Integrated Services Router: PCU + loader + AIU +
//! routing table + interfaces, with the gate-traversing data path of paper
//! §3.2 and the Router Plugin Library control API of §3.1.

use crate::gate::{Gate, ALL_GATES, GATE_COUNT};
use crate::ip_core::{
    dst_of, validate_and_age, DataPathStats, Disposition, DropReason, RouteEntry, RoutingTable,
};
use crate::loader::PluginLoader;
use crate::message::{PluginMsg, PluginReply};
use crate::obs::{self, MetricsRegistry, MetricsSnapshot, TraceCategory, Tracer};
use crate::pcu::Pcu;
use crate::plugin::{InstanceId, InstanceRef, PacketCtx, PluginAction, PluginError};
use crate::supervisor::{self, FaultKind, FaultPolicy, HealthReport, Supervisor};
use rp_classifier::aiu::ClassifyOutcome;
use rp_classifier::flow_table::EvictedFlow;
use rp_classifier::{Aiu, AiuConfig, BmpKind, FilterId, FlowTableConfig};
use rp_packet::mbuf::IfIndex;
use rp_packet::{Mbuf, MbufPool, PoolStats};
use std::net::IpAddr;
use std::sync::Arc;

/// A network interface: egress queue plus bookkeeping. Reception is
/// modelled by calling [`Router::receive`] with the interface id.
pub struct Interface {
    /// Interface id.
    pub id: IfIndex,
    /// MTU in bytes (the paper's ATM testbed uses 9180).
    pub mtu: usize,
    /// The router's own address on this interface (source of ICMP
    /// errors; errors are suppressed when unset).
    pub addr: Option<IpAddr>,
    /// Scheduler instances that currently hold packets for this interface
    /// (the default FIFO plus any flow-bound plugin instances).
    scheds: Vec<InstanceRef>,
    /// Transmitted packets, collected by the testbench ("the wire").
    pub tx_log: Vec<Mbuf>,
}

impl Interface {
    fn attach_sched(&mut self, inst: &InstanceRef) {
        if !self.scheds.iter().any(|s| Arc::ptr_eq(s, inst)) {
            self.scheds.push(inst.clone());
        }
    }
}

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of interfaces.
    pub interfaces: usize,
    /// MTU for every interface.
    pub mtu: usize,
    /// Verify IPv4 header checksums on reception.
    pub verify_checksums: bool,
    /// Which gates are compiled into the data path. The Table 3 baseline
    /// ("unmodified kernel") runs with none.
    pub enabled_gates: Vec<Gate>,
    /// Flow-cache configuration.
    pub flow_table: FlowTableConfig,
    /// BMP plugin for the classifier's address levels.
    pub bmp: BmpKind,
    /// Plugin fault-handling policy (thresholds, budget, restart).
    pub fault_policy: FaultPolicy,
    /// End-to-end latency deadline in wall-clock nanoseconds; `0`
    /// disables the check. When set, a packet whose coarse ingress
    /// stamp (see [`rp_packet::coarse_now_ns`]) is already older than
    /// this at [`Router::receive_stamped`] is shed as
    /// [`DropReason::DeadlineExceeded`] instead of forwarded late.
    pub max_sojourn_ns: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            interfaces: 4,
            mtu: 9180,
            verify_checksums: true,
            enabled_gates: ALL_GATES.to_vec(),
            flow_table: FlowTableConfig {
                gates: GATE_COUNT,
                ..FlowTableConfig::default()
            },
            bmp: BmpKind::Bspl,
            fault_policy: FaultPolicy::default(),
            max_sojourn_ns: 0,
        }
    }
}

/// The router.
pub struct Router {
    /// The Plugin Control Unit.
    pub pcu: Pcu,
    /// The module loader.
    pub loader: PluginLoader,
    aiu: Aiu<InstanceRef>,
    routes: RoutingTable,
    interfaces: Vec<Interface>,
    enabled: [bool; GATE_COUNT],
    verify_checksums: bool,
    max_sojourn_ns: u64,
    stats: DataPathStats,
    now_ns: u64,
    supervisor: Supervisor,
    metrics: MetricsRegistry,
    tracer: Tracer,
    /// Free list of packet backing buffers. Every data-path drop and
    /// every fragment emission recycles through here; drivers that build
    /// ingress mbufs with [`Router::mbuf_with`] and return egress buffers
    /// via [`Router::recycle_mbuf`] run allocation-free in steady state.
    pool: MbufPool,
    /// Reusable buffer for idle-expiry sweeps (no per-sweep `Vec`).
    evict_scratch: Vec<EvictedFlow<InstanceRef>>,
}

/// Result of one supervised gate invocation (internal to the data path).
enum GateOutcome {
    /// The instance ran to completion and returned an action.
    Action(PluginAction),
    /// The instance faulted mid-packet; the packet must be dropped (and
    /// counted) rather than forwarded with possibly-torn state.
    Fault,
    /// The data path's own flow state was inconsistent.
    Internal,
}

impl Router {
    /// Build a router; plugins are loaded separately (see
    /// [`crate::plugins::register_builtin_factories`]).
    pub fn new(cfg: RouterConfig) -> Self {
        let mut flow_cfg = cfg.flow_table;
        flow_cfg.gates = GATE_COUNT;
        let mut enabled = [false; GATE_COUNT];
        for g in &cfg.enabled_gates {
            enabled[g.index()] = true;
        }
        Router {
            pcu: Pcu::new(),
            loader: PluginLoader::new(),
            aiu: Aiu::new(AiuConfig {
                gates: GATE_COUNT,
                flow_table: flow_cfg,
                bmp: cfg.bmp,
            }),
            routes: RoutingTable::new(),
            interfaces: (0..cfg.interfaces)
                .map(|i| Interface {
                    id: i as IfIndex,
                    mtu: cfg.mtu,
                    addr: None,
                    scheds: Vec::new(),
                    tx_log: Vec::new(),
                })
                .collect(),
            enabled,
            verify_checksums: cfg.verify_checksums,
            max_sojourn_ns: cfg.max_sojourn_ns,
            stats: DataPathStats::default(),
            now_ns: 0,
            supervisor: Supervisor::new(cfg.fault_policy),
            metrics: MetricsRegistry::default(),
            tracer: Tracer::default(),
            pool: MbufPool::default(),
            evict_scratch: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Control path (the Router Plugin Library API)
    // ------------------------------------------------------------------

    /// `modload <name>`.
    pub fn load_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.loader.load(name, &mut self.pcu)
    }

    /// `modunload <name>`.
    pub fn unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.loader.unload(name, &mut self.pcu)
    }

    /// Forced `modunload`: free every live instance first — deregistering
    /// its filters, flushing its cached flows, and detaching it from
    /// interface egress queues — then unload the module. The plain
    /// [`Router::unload_plugin`] keeps the refusal semantics when
    /// instances are live; this is the operator's escape hatch for a
    /// misbehaving module with flows still bound mid-stream.
    pub fn force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        let ids = self.pcu.instances(name)?;
        for id in ids {
            self.send_message(name, PluginMsg::FreeInstance { id })?;
        }
        self.loader.unload(name, &mut self.pcu)
    }

    /// Send a standardized or plugin-specific message to a plugin — the
    /// full control path of Figure 2 (PCU dispatch, AIU registration).
    pub fn send_message(
        &mut self,
        plugin: &str,
        msg: PluginMsg,
    ) -> Result<PluginReply, PluginError> {
        match msg {
            PluginMsg::CreateInstance { config } => {
                let (id, inst) = self.pcu.create_instance(plugin, &config)?;
                // Supervise it: the name + config are what a restart needs
                // to rebuild the instance from the plugin's factory.
                self.supervisor.track(plugin, id, &config, &inst);
                Ok(PluginReply::InstanceCreated(id))
            }
            PluginMsg::FreeInstance { id } => {
                let inst = self.pcu.instance(plugin, id)?;
                // Drain any egress queue the instance holds onto the wire
                // first: deregistering below runs the instance's own
                // flow-eviction callbacks, which (for schedulers) discard
                // the flow's backlog — those packets were already counted
                // forwarded and must not be blackholed. This also detaches
                // the instance so the data path can't dequeue from it
                // after the free.
                self.detach_sched_everywhere(&inst);
                // Purge filter bindings referencing this instance.
                for gate in ALL_GATES {
                    let ids: Vec<FilterId> = self
                        .aiu
                        .filter_table(gate.index())
                        .filter_ids()
                        .into_iter()
                        .filter(|fid| {
                            self.aiu
                                .filter_table(gate.index())
                                .get(*fid)
                                .map(|(_, v)| Arc::ptr_eq(v, &inst))
                                .unwrap_or(false)
                        })
                        .collect();
                    for fid in ids {
                        self.deregister(gate, fid)?;
                    }
                }
                self.supervisor.untrack(&inst);
                self.pcu.free_instance(plugin, id)?;
                Ok(PluginReply::InstanceFreed)
            }
            PluginMsg::RegisterInstance { id, gate, filter } => {
                let inst = self.pcu.instance(plugin, id)?;
                let (fid, evicted) = self
                    .aiu
                    .install_filter(gate.index(), filter.clone(), inst.clone())
                    .map_err(|e| PluginError::Filter(e.to_string()))?;
                if self.tracer.wants(TraceCategory::Filter) {
                    let now = self.now_ns;
                    let detail = format!("filter installed at {gate} id={}: {filter}", fid.0);
                    self.tracer.record(now, TraceCategory::Filter, detail);
                }
                self.supervisor.note_binding(&inst, gate, filter, fid);
                for ev in evicted {
                    self.run_eviction_callbacks(ev);
                }
                Ok(PluginReply::Registered(fid))
            }
            PluginMsg::DeregisterInstance { gate, filter } => {
                self.deregister(gate, filter)?;
                Ok(PluginReply::Deregistered)
            }
            PluginMsg::Custom {
                instance,
                name,
                args,
            } => {
                let text = self.pcu.custom_message(plugin, instance, &name, &args)?;
                Ok(PluginReply::Text(text))
            }
        }
    }

    fn deregister(&mut self, gate: Gate, fid: FilterId) -> Result<(), PluginError> {
        let (_spec, inst, evicted) = self
            .aiu
            .remove_filter(gate.index(), fid)
            .map_err(|e| PluginError::Filter(e.to_string()))?;
        if self.tracer.wants(TraceCategory::Filter) {
            let now = self.now_ns;
            let detail = format!("filter removed at {gate} id={}", fid.0);
            self.tracer.record(now, TraceCategory::Filter, detail);
        }
        self.supervisor.note_unbinding(&inst, gate, fid);
        let _ = supervisor::run_isolated(|| inst.filter_unbound(fid));
        for ev in evicted {
            self.run_eviction_callbacks(ev);
        }
        Ok(())
    }

    fn run_eviction_callbacks(&mut self, ev: EvictedFlow<InstanceRef>) {
        self.run_eviction_callbacks_skipping(ev, None);
    }

    /// Run per-flow eviction callbacks, isolated from panics. `skip`
    /// suppresses the callback for one instance — used when quarantining
    /// a faulted instance, whose code must not run again.
    fn run_eviction_callbacks_skipping(
        &mut self,
        mut ev: EvictedFlow<InstanceRef>,
        skip: Option<&InstanceRef>,
    ) {
        for g in ev.gates.iter_mut() {
            if let Some(inst) = g.instance.take() {
                if skip.is_some_and(|s| Arc::ptr_eq(s, &inst)) {
                    continue;
                }
                let soft = g.soft_state.take();
                let _ = supervisor::run_isolated(|| inst.flow_unbound(&ev.key, soft));
            }
        }
    }

    /// Assign the router's own address on an interface (enables ICMP
    /// Time Exceeded generation for packets arriving there).
    pub fn set_interface_addr(&mut self, iface: IfIndex, addr: IpAddr) {
        self.interfaces[iface as usize].addr = Some(addr);
    }

    /// Add a route.
    pub fn add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.routes.add(addr, prefix_len, RouteEntry { tx_if });
    }

    /// Remove a route.
    pub fn remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool {
        self.routes.remove(addr, prefix_len).is_some()
    }

    /// Repack the routing tries breadth-first for cache-line adjacency
    /// (see [`rp_lpm::PatriciaTable::repack`]). Call once after bulk
    /// route loading; forwarding behaviour is unchanged.
    pub fn optimize_routes(&mut self) {
        self.routes.optimize();
    }

    /// Hot-prefix FIB cache counters.
    pub fn fib_cache_stats(&self) -> crate::ip_core::FibCacheStats {
        self.routes.fib_cache_stats()
    }

    /// Enable or disable a gate at run time.
    pub fn set_gate_enabled(&mut self, gate: Gate, enabled: bool) {
        self.enabled[gate.index()] = enabled;
    }

    /// Is a gate enabled?
    pub fn gate_enabled(&self, gate: Gate) -> bool {
        self.enabled[gate.index()]
    }

    /// Attach a scheduler instance to an interface as its default egress
    /// queue (packets whose flow has no scheduling binding use it).
    pub fn set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError> {
        let inst = self.pcu.instance(plugin, id)?;
        if inst.as_scheduler().is_none() {
            return Err(PluginError::BadConfig(format!(
                "instance {id} of {plugin} is not a scheduler"
            )));
        }
        let ifc = &mut self.interfaces[iface as usize];
        ifc.scheds.retain(|_| false);
        ifc.attach_sched(&inst);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data path (paper §3.2)
    // ------------------------------------------------------------------

    /// Advance the router's virtual clock. Restart backoffs run on this
    /// clock, so advancing it also attempts any due restarts.
    pub fn set_time_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        self.aiu.set_now(now_ns);
        self.poll_restarts();
    }

    /// Expire flow-cache entries idle longer than `max_idle_ns`, running
    /// plugin eviction callbacks (paper §3.2 idle-flow removal). Evictions
    /// drain through a reusable scratch buffer, so a steady-state sweep
    /// that finds nothing to expire allocates nothing.
    pub fn expire_idle_flows(&mut self, max_idle_ns: u64) -> usize {
        let mut evicted = std::mem::take(&mut self.evict_scratch);
        evicted.clear();
        let n = self.aiu.expire_idle_into(max_idle_ns, &mut evicted);
        self.metrics.flows_expired += n as u64;
        for ev in evicted.drain(..) {
            if self.tracer.wants(TraceCategory::Flow) {
                let now = self.now_ns;
                let detail = format!("flow expired: {}", ev.key);
                self.tracer.record(now, TraceCategory::Flow, detail);
            }
            self.run_eviction_callbacks(ev);
        }
        self.evict_scratch = evicted;
        n
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The gate dispatch: ensure the packet is classified (first gate),
    /// then fetch the bound instance for `gate` through the FIX — the
    /// paper's gate macro. `Err` means the packet could not be classified
    /// at all (unparsable headers): it must take the malformed drop path,
    /// not silently skip the gate.
    fn at_gate(&mut self, mbuf: &mut Mbuf, gate: Gate) -> Result<Option<InstanceRef>, DropReason> {
        if mbuf.fix.is_none() && !mbuf.class_denied {
            match self.aiu.classify_mbuf(mbuf) {
                Ok((outcome, evicted)) => {
                    let gi = gate.index();
                    match outcome {
                        ClassifyOutcome::CacheHit(_) => self.metrics.class_hits[gi] += 1,
                        ClassifyOutcome::CacheMiss(_) => {
                            self.metrics.class_misses[gi] += 1;
                            if rp_packet::flow::is_fragment(mbuf.data()) {
                                self.metrics.fragment_flows += 1;
                            }
                            if self.tracer.wants(TraceCategory::Flow) {
                                let now = self.now_ns;
                                let detail = format!(
                                    "flow created at {gate} fix={:?}",
                                    mbuf.fix.map(|f| f.0)
                                );
                                self.tracer.record(now, TraceCategory::Flow, detail);
                            }
                        }
                        ClassifyOutcome::Denied => {
                            // Admission control refused a record: the
                            // packet still forwards, uncached, on every
                            // gate's default path. Counted via the
                            // flow-table stats gauge in the metrics
                            // snapshot.
                            self.metrics.class_misses[gi] += 1;
                            if self.tracer.wants(TraceCategory::Flow) {
                                let now = self.now_ns;
                                let detail = format!("flow admission denied at {gate}");
                                self.tracer.record(now, TraceCategory::Flow, detail);
                            }
                        }
                    }
                    if let Some(ev) = evicted {
                        self.metrics.class_recycled[gi] += 1;
                        if self.tracer.wants(TraceCategory::Flow) {
                            let now = self.now_ns;
                            let detail = format!("flow recycled at {gate}: {}", ev.key);
                            self.tracer.record(now, TraceCategory::Flow, detail);
                        }
                        self.run_eviction_callbacks(ev);
                    }
                }
                Err(_) => return Err(DropReason::Malformed),
            }
        }
        let Some(fix) = mbuf.fix else {
            return Ok(None);
        };
        let Some(inst) = self.aiu.instance(fix, gate.index()).cloned() else {
            return Ok(None);
        };
        // Defense in depth: a quarantined instance never sees another
        // packet, even through a stale cached binding.
        if self.supervisor.is_quarantined(&inst) {
            return Ok(None);
        }
        Ok(Some(inst))
    }

    /// Invoke an instance at a gate under supervision: the call is
    /// panic-isolated, charged against the policy's packet budget, and
    /// any fault is counted against the instance's health.
    fn call_instance(&mut self, inst: &InstanceRef, mbuf: &mut Mbuf, gate: Gate) -> GateOutcome {
        self.stats.plugin_calls += 1;
        let Some(fix) = mbuf.fix else {
            // Gates run only after classification; no FIX here means the
            // data path lost track of its own state. Count, don't panic.
            return GateOutcome::Internal;
        };
        let now = self.now_ns;
        let budget = self.supervisor.policy().packet_budget_ns;
        // Latency is wall-clock (virtual time doesn't advance inside a
        // call) and sampled 1-in-N so the clock reads stay off the common
        // path.
        let t0 = self
            .metrics
            .note_gate_call(gate)
            .then(std::time::Instant::now);
        // The AIU borrow lives only inside this block: fault handling
        // below needs `&mut self` again.
        let call = {
            let Some((filter, slot)) = self.aiu.binding_mut(fix, gate.index()) else {
                // The flow record vanished between classification and the
                // gate call (e.g. recycled under pressure mid-pipeline).
                return GateOutcome::Internal;
            };
            let mut ctx = PacketCtx {
                gate,
                now_ns: now,
                fix,
                filter,
                soft_state: slot,
                cost_ns: 0,
            };
            supervisor::run_isolated(|| {
                let action = inst.handle_packet(mbuf, &mut ctx);
                (action, ctx.cost_ns)
            })
        };
        if let Some(t0) = t0 {
            self.metrics
                .note_gate_latency(gate, t0.elapsed().as_nanos() as u64);
        }
        match call {
            Ok((action, cost_ns)) => {
                if budget > 0 && cost_ns > budget {
                    // A modelled stall: the call "completed" but charged
                    // more processing time than the policy tolerates.
                    let kind = FaultKind::BudgetExceeded {
                        cost_ns,
                        budget_ns: budget,
                    };
                    if self.note_fault(inst, &kind) {
                        mbuf.fix = None; // quarantined: reclassify downstream
                    }
                }
                GateOutcome::Action(action)
            }
            Err(msg) => {
                if self.note_fault(inst, &FaultKind::Panic(msg)) {
                    mbuf.fix = None;
                }
                GateOutcome::Fault
            }
        }
    }

    /// Count one fault; on the quarantine edge, pull the instance off the
    /// data path. Returns true when the instance was just quarantined.
    fn note_fault(&mut self, inst: &InstanceRef, kind: &FaultKind) -> bool {
        self.stats.plugin_faults += 1;
        if self.tracer.wants(TraceCategory::Plugin) {
            let now = self.now_ns;
            let detail = format!("fault in {}: {kind}", inst.describe());
            self.tracer.record(now, TraceCategory::Plugin, detail);
        }
        let verdict = self.supervisor.record_fault(inst, kind);
        if verdict.newly_quarantined {
            self.quarantine(inst);
            true
        } else {
            false
        }
    }

    /// Remove a quarantined instance from the data path: its filters go,
    /// its cached flows are invalidated (falling back to each gate's
    /// default path on their next packet), its egress queues drain to the
    /// wire, and a restart is scheduled per policy.
    fn quarantine(&mut self, inst: &InstanceRef) {
        self.stats.plugin_quarantines += 1;
        if self.tracer.wants(TraceCategory::Plugin) {
            let now = self.now_ns;
            let detail = format!("quarantined {}", inst.describe());
            self.tracer.record(now, TraceCategory::Plugin, detail);
        }
        // Filters first — otherwise the next classification would re-bind
        // the dead instance. The instance's own callbacks are skipped (its
        // code must not run again); other instances' callbacks still fire.
        for gate in ALL_GATES {
            let table = self.aiu.filter_table(gate.index());
            let ids: Vec<FilterId> = table
                .filter_ids()
                .into_iter()
                .filter(|fid| {
                    table
                        .get(*fid)
                        .map(|(_, v)| Arc::ptr_eq(v, inst))
                        .unwrap_or(false)
                })
                .collect();
            for fid in ids {
                if let Ok((_spec, _inst, evicted)) = self.aiu.remove_filter(gate.index(), fid) {
                    for ev in evicted {
                        self.run_eviction_callbacks_skipping(ev, Some(inst));
                    }
                }
            }
        }
        // Then any cached flow still binding it at any gate (filters
        // installed behind the router's back, recycled records, …).
        let dead = inst.clone();
        let evicted = self.aiu.invalidate_flows_where(|r| {
            r.gates
                .instances()
                .iter()
                .any(|i| i.as_ref().is_some_and(|v| Arc::ptr_eq(v, &dead)))
        });
        for ev in evicted {
            self.run_eviction_callbacks_skipping(ev, Some(inst));
        }
        self.detach_sched_everywhere(inst);
        let _ = self.supervisor.schedule_restart(inst, self.now_ns);
    }

    /// Detach an instance from every interface's scheduler list, draining
    /// whatever its queue still holds onto the wire first (those packets
    /// were already counted forwarded when they were queued; dropping
    /// them silently would blackhole them).
    fn detach_sched_everywhere(&mut self, inst: &InstanceRef) {
        let now = self.now_ns;
        for ifc in &mut self.interfaces {
            if !ifc.scheds.iter().any(|s| Arc::ptr_eq(s, inst)) {
                continue;
            }
            if let Some(sched) = inst.as_scheduler() {
                while let Ok(Some(pkt)) = supervisor::run_isolated(|| sched.dequeue(now)) {
                    self.metrics.note_tx(ifc.id, pkt.len());
                    ifc.tx_log.push(pkt);
                }
            }
            ifc.scheds.retain(|s| !Arc::ptr_eq(s, inst));
        }
    }

    /// Attempt every due restart: free the dead instance, rebuild it from
    /// the plugin's factory with the original config, and re-install its
    /// filter bindings for the fresh instance.
    fn poll_restarts(&mut self) {
        if !self.supervisor.restart_due(self.now_ns) {
            return;
        }
        for t in self.supervisor.take_due(self.now_ns) {
            let _ = self.pcu.free_instance(&t.plugin, t.id);
            match self.pcu.create_instance(&t.plugin, &t.config) {
                Ok((new_id, new_inst)) => {
                    let mut new_bindings = Vec::new();
                    for (gate, spec) in &t.bindings {
                        if let Ok((fid, evicted)) =
                            self.aiu
                                .install_filter(gate.index(), spec.clone(), new_inst.clone())
                        {
                            for ev in evicted {
                                self.run_eviction_callbacks(ev);
                            }
                            new_bindings.push((*gate, spec.clone(), fid));
                        }
                    }
                    self.stats.plugin_restarts += 1;
                    if self.tracer.wants(TraceCategory::Plugin) {
                        let now = self.now_ns;
                        let detail = format!("restarted {} {} → {}", t.plugin, t.id.0, new_id.0);
                        self.tracer.record(now, TraceCategory::Plugin, detail);
                    }
                    self.supervisor.complete_restart(
                        &t.plugin,
                        t.id,
                        new_id,
                        &new_inst,
                        new_bindings,
                    );
                }
                Err(_) => {
                    // Factory refused (or the plugin was unloaded while
                    // the instance sat in quarantine): re-arm the backoff
                    // or give up, per policy.
                    self.supervisor.fail_restart(&t.plugin, t.id, self.now_ns);
                }
            }
        }
    }

    /// Process one received packet through the full data path.
    pub fn receive(&mut self, mut mbuf: Mbuf) -> Disposition {
        self.poll_restarts();
        self.stats.received += 1;
        self.metrics.note_rx(mbuf.rx_if, mbuf.len());
        mbuf.timestamp_ns = self.now_ns;

        // Core: validate + age. A TTL/hop-limit expiry additionally sends
        // ICMP Time Exceeded back toward the source (RFC 792 / RFC 2463),
        // provided the receive interface has an address configured.
        if let Err(reason) = validate_and_age(&mut mbuf, self.verify_checksums) {
            if reason == DropReason::TtlExpired {
                self.emit_time_exceeded(&mbuf);
            }
            return self.drop_pkt(mbuf, reason);
        }

        // Pre-routing gates.
        for gate in [
            Gate::Firewall,
            Gate::Ipv6Options,
            Gate::IpSecurity,
            Gate::Routing,
            Gate::Stats,
        ] {
            if !self.enabled[gate.index()] {
                continue;
            }
            let inst = match self.at_gate(&mut mbuf, gate) {
                Ok(i) => i,
                Err(reason) => return self.drop_pkt(mbuf, reason),
            };
            if let Some(inst) = inst {
                match self.call_instance(&inst, &mut mbuf, gate) {
                    GateOutcome::Action(PluginAction::Continue) => {}
                    GateOutcome::Action(PluginAction::Consumed) => {
                        // A consuming plugin either took the buffer (the
                        // mbuf left behind is an empty shell) or left it;
                        // recycling handles both.
                        self.pool.recycle(mbuf);
                        return Disposition::Consumed(gate);
                    }
                    GateOutcome::Action(PluginAction::Drop) => {
                        return self.drop_pkt(mbuf, DropReason::Plugin(gate))
                    }
                    GateOutcome::Fault => {
                        return self.drop_pkt(mbuf, DropReason::PluginFault(gate))
                    }
                    GateOutcome::Internal => return self.drop_pkt(mbuf, DropReason::Internal),
                }
            }
        }

        // Core routing (unless a routing plugin already set the egress).
        if mbuf.tx_if.is_none() {
            let dst = match dst_of(&mbuf) {
                Ok(d) => d,
                Err(r) => return self.drop_pkt(mbuf, r),
            };
            match self.routes.lookup_cached(dst) {
                Some(e) => mbuf.tx_if = Some(e.tx_if),
                None => return self.drop_pkt(mbuf, DropReason::NoRoute),
            }
        }
        let Some(tx_if) = mbuf.tx_if else {
            // Both branches above either set tx_if or returned; reaching
            // here means the routing state is inconsistent. Count it.
            return self.drop_pkt(mbuf, DropReason::Internal);
        };
        if tx_if as usize >= self.interfaces.len() {
            return self.drop_pkt(mbuf, DropReason::NoRoute);
        }

        // Egress MTU: fragment IPv4, refuse oversized IPv6 / DF packets
        // (a real router would add ICMP Packet Too Big; transit routers
        // never reassemble).
        let mtu = self.interfaces[tx_if as usize].mtu;
        if mbuf.len() > mtu {
            use rp_packet::IpVersion;
            let pool = &mut self.pool;
            let frags = match IpVersion::of_packet(mbuf.data()) {
                Ok(IpVersion::V4) => {
                    match crate::ip_core::fragment_v4_with(mbuf.data(), mtu, &mut || pool.buffer())
                    {
                        Ok(f) => f,
                        Err(r) => {
                            self.stats.dropped_too_big += 1;
                            self.pool.recycle(mbuf);
                            return Disposition::Dropped(r);
                        }
                    }
                }
                _ => {
                    self.stats.dropped_too_big += 1;
                    self.pool.recycle(mbuf);
                    return Disposition::Dropped(DropReason::TooBig);
                }
            };
            self.stats.fragmented += 1;
            let rx = mbuf.rx_if;
            let fix = mbuf.fix;
            let denied = mbuf.class_denied;
            // The oversized original's buffer feeds the next acquisition.
            self.pool.recycle(mbuf);
            let mut last = Disposition::Forwarded(tx_if);
            for frag in frags {
                let mut fm = Mbuf::new(frag, rx);
                fm.fix = fix;
                fm.class_denied = denied;
                fm.tx_if = Some(tx_if);
                last = self.dispatch_egress(fm, tx_if);
            }
            return last;
        }

        self.dispatch_egress(mbuf, tx_if)
    }

    /// [`Router::receive`] with end-to-end latency accounting. `wall_now_ns`
    /// is the caller's current [`rp_packet::coarse_now_ns`] reading (read
    /// once per batch, not per packet); the mbuf's `timestamp_ns` carries
    /// its coarse ingress stamp from the I/O plane or pool. The sojourn so
    /// far (ingress → shard dequeue) is recorded in the per-router metrics
    /// histogram, and — when a `max_sojourn_ns` deadline is configured — a
    /// packet already older than the deadline is shed as
    /// [`DropReason::DeadlineExceeded`] instead of forwarded late: under
    /// overload latency degrades into counted sheds, not collapse.
    ///
    /// The stamp is consumed here because [`Router::receive`] overwrites
    /// `timestamp_ns` with the router's *virtual* clock for plugin use.
    pub fn receive_stamped(&mut self, mbuf: Mbuf, wall_now_ns: u64) -> Disposition {
        let stamp = mbuf.timestamp_ns;
        if stamp != 0 && wall_now_ns >= stamp {
            let sojourn = wall_now_ns - stamp;
            self.metrics.note_sojourn(sojourn);
            if self.max_sojourn_ns != 0 && sojourn > self.max_sojourn_ns {
                // Count it received (it did arrive) then shed: the
                // conservation invariant `received == forwarded + Σdrops`
                // stays exact.
                self.stats.received += 1;
                self.metrics.note_rx(mbuf.rx_if, mbuf.len());
                return self.drop_pkt(mbuf, DropReason::DeadlineExceeded);
            }
        }
        self.receive(mbuf)
    }

    /// Set (or clear, with `0`) the end-to-end latency deadline at
    /// runtime; see [`RouterConfig::max_sojourn_ns`].
    pub fn set_max_sojourn_ns(&mut self, ns: u64) {
        self.max_sojourn_ns = ns;
    }

    /// Scheduling gate + emission for a packet whose egress interface is
    /// already decided and which fits the MTU.
    fn dispatch_egress(&mut self, mut mbuf: Mbuf, tx_if: IfIndex) -> Disposition {
        // Scheduling gate on the egress interface.
        if self.enabled[Gate::Scheduling.index()] {
            let inst = match self.at_gate(&mut mbuf, Gate::Scheduling) {
                Ok(i) => i,
                Err(reason) => return self.drop_pkt(mbuf, reason),
            };
            if let Some(inst) = inst {
                self.interfaces[tx_if as usize].attach_sched(&inst);
                return match self.call_instance(&inst, &mut mbuf, Gate::Scheduling) {
                    GateOutcome::Action(PluginAction::Consumed) => {
                        // The scheduler took the buffer; what's left is an
                        // empty shell (recycled as a no-op).
                        self.pool.recycle(mbuf);
                        self.stats.forwarded += 1;
                        Disposition::Queued(tx_if)
                    }
                    GateOutcome::Action(PluginAction::Drop) => {
                        self.drop_pkt(mbuf, DropReason::QueueFull)
                    }
                    GateOutcome::Action(PluginAction::Continue) => {
                        // Scheduler declined (e.g. pass-through): emit.
                        self.emit(mbuf, tx_if)
                    }
                    GateOutcome::Fault => {
                        self.drop_pkt(mbuf, DropReason::PluginFault(Gate::Scheduling))
                    }
                    GateOutcome::Internal => self.drop_pkt(mbuf, DropReason::Internal),
                };
            }
        }
        self.emit(mbuf, tx_if)
    }

    /// Build and transmit an ICMP(v4/v6) Time Exceeded toward the
    /// offending packet's source, out the interface it arrived on.
    fn emit_time_exceeded(&mut self, original: &Mbuf) {
        let rx = original.rx_if as usize;
        let Some(ifc) = self.interfaces.get(rx) else {
            return;
        };
        let Some(addr) = ifc.addr else { return };
        if let Some(reply) = crate::ip_core::build_time_exceeded(addr, original.data()) {
            self.interfaces[rx]
                .tx_log
                .push(Mbuf::new(reply, original.rx_if));
        }
    }

    fn emit(&mut self, mbuf: Mbuf, tx_if: IfIndex) -> Disposition {
        self.stats.forwarded += 1;
        self.metrics.note_tx(tx_if, mbuf.len());
        self.interfaces[tx_if as usize].tx_log.push(mbuf);
        Disposition::Forwarded(tx_if)
    }

    /// Drop a packet, returning its backing buffer to the pool. Every
    /// data-path drop that still owns the mbuf funnels through here so
    /// dropped packets feed subsequent acquisitions instead of the
    /// allocator.
    fn drop_pkt(&mut self, mbuf: Mbuf, reason: DropReason) -> Disposition {
        self.pool.recycle(mbuf);
        self.drop(reason)
    }

    fn drop(&mut self, reason: DropReason) -> Disposition {
        self.metrics.note_drop(reason);
        match reason {
            DropReason::Malformed | DropReason::BadChecksum => self.stats.dropped_malformed += 1,
            DropReason::TtlExpired => self.stats.dropped_ttl += 1,
            DropReason::NoRoute => self.stats.dropped_no_route += 1,
            DropReason::Plugin(_) => self.stats.dropped_plugin += 1,
            DropReason::QueueFull => self.stats.dropped_queue += 1,
            DropReason::TooBig => self.stats.dropped_too_big += 1,
            DropReason::PluginFault(_) => self.stats.dropped_fault += 1,
            DropReason::Internal => self.stats.dropped_internal += 1,
            // Shard-level sheds happen at the parallel dispatcher, never
            // inside a single router's data path; counted for
            // completeness should a caller synthesize one.
            DropReason::ShardOverload => self.stats.dropped_shard_overload += 1,
            DropReason::ShardDown => self.stats.dropped_shard_down += 1,
            // Device-level drops happen in the I/O plane (which counts
            // them in bulk via [`Router::note_device_rx_drops`] /
            // [`Router::note_device_tx_drops`]); counted for completeness
            // should a caller synthesize one.
            DropReason::DeviceRx => self.stats.dropped_device_rx += 1,
            DropReason::DeviceTx => self.stats.dropped_device_tx += 1,
            DropReason::DeadlineExceeded => self.stats.dropped_deadline += 1,
        }
        Disposition::Dropped(reason)
    }

    /// Drain up to `max` packets from an interface's schedulers onto its
    /// wire (the device driver's transmit interrupt). Returns packets
    /// transmitted.
    pub fn pump(&mut self, iface: IfIndex, max: usize) -> usize {
        let now = self.now_ns;
        let mut sent = 0;
        // Dequeue panics are collected here and counted after the
        // interface borrow ends (fault handling needs `&mut self`).
        let mut faulted: Vec<(InstanceRef, String)> = Vec::new();
        {
            let ifc = &mut self.interfaces[iface as usize];
            'outer: while sent < max {
                let mut any = false;
                for s in &ifc.scheds {
                    if faulted.iter().any(|(f, _)| Arc::ptr_eq(f, s)) {
                        continue;
                    }
                    if let Some(sched) = s.as_scheduler() {
                        match supervisor::run_isolated(|| sched.dequeue(now)) {
                            Ok(Some(pkt)) => {
                                self.metrics.note_tx(ifc.id, pkt.len());
                                ifc.tx_log.push(pkt);
                                sent += 1;
                                any = true;
                                if sent >= max {
                                    break 'outer;
                                }
                            }
                            Ok(None) => {}
                            Err(msg) => faulted.push((s.clone(), msg)),
                        }
                    }
                }
                if !any {
                    break;
                }
            }
        }
        for (inst, msg) in faulted {
            self.note_fault(&inst, &FaultKind::Panic(msg));
        }
        sent
    }

    /// Take the packets transmitted on an interface since the last call.
    pub fn take_tx(&mut self, iface: IfIndex) -> Vec<Mbuf> {
        std::mem::take(&mut self.interfaces[iface as usize].tx_log)
    }

    /// Drain an interface's transmitted packets into `out`, preserving
    /// both the tx log's and `out`'s allocated capacity — the
    /// zero-allocation counterpart of [`Router::take_tx`] for drivers
    /// that reuse a scratch vector across calls.
    pub fn take_tx_into(&mut self, iface: IfIndex, out: &mut Vec<Mbuf>) {
        out.append(&mut self.interfaces[iface as usize].tx_log);
    }

    /// Build an ingress mbuf backed by a pooled buffer (the device
    /// driver's receive-side allocation in the paper's architecture).
    pub fn mbuf_with(&mut self, bytes: &[u8], rx_if: IfIndex) -> Mbuf {
        let mut m = self.pool.mbuf_from(bytes, rx_if);
        // Coarse ingress stamp for end-to-end sojourn accounting; the
        // I/O plane re-stamps per received batch, this covers callers
        // that inject synthetic traffic directly.
        m.timestamp_ns = rp_packet::coarse_now_ns();
        m
    }

    /// Return an mbuf's backing buffer to the router's pool (the driver
    /// calls this once a transmitted packet has left "the wire").
    pub fn recycle_mbuf(&mut self, mbuf: Mbuf) {
        self.pool.recycle(mbuf);
    }

    /// Mbuf-pool counters (also surfaced via
    /// [`Router::metrics_snapshot`]). Cumulative since construction.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The router's buffer pool, for device drivers that acquire and
    /// recycle backing buffers directly (the I/O plane's egress drain
    /// hands transmitted buffers straight back here).
    pub fn pool_mut(&mut self) -> &mut rp_packet::pool::MbufPool {
        &mut self.pool
    }

    /// Account `n` frames the receive side of a device dropped before
    /// they became IP packets (truncated or non-IP L2 frames). They count
    /// as received so the conservation invariant
    /// `received == forwarded + Σdrops` extends to the wire.
    pub fn note_device_rx_drops(&mut self, n: u64) {
        self.stats.received += n;
        self.stats.dropped_device_rx += n;
        self.metrics.drops[obs::drop_reason_index(DropReason::DeviceRx)] += n;
    }

    /// Re-account `n` already-forwarded packets whose egress device
    /// refused to transmit them: they leave `forwarded` and land in the
    /// device-tx drop counter, keeping `received == forwarded + Σdrops`
    /// exact from wire to wire.
    pub fn note_device_tx_drops(&mut self, n: u64) {
        self.stats.forwarded = self.stats.forwarded.saturating_sub(n);
        self.stats.dropped_device_tx += n;
        self.metrics.drops[obs::drop_reason_index(DropReason::DeviceTx)] += n;
    }

    /// Data-path statistics.
    pub fn stats(&self) -> DataPathStats {
        self.stats
    }

    /// Flow-cache statistics (hits/misses/recycling).
    pub fn flow_stats(&self) -> rp_classifier::flow_table::FlowTableStats {
        self.aiu.flow_stats()
    }

    /// Approximate flow-table heap footprint in bytes.
    pub fn flow_mem_bytes(&self) -> usize {
        self.aiu.flow_mem_bytes()
    }

    /// A point-in-time metrics snapshot, with the scheduler queue-depth
    /// gauges sampled now (the hot path never pays for gauge updates).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = self.metrics;
        for ifc in &self.interfaces {
            let depth: u64 = ifc
                .scheds
                .iter()
                .filter_map(|s| s.as_scheduler())
                .map(|s| s.backlog() as u64)
                .sum();
            m.queue_depth[obs::iface_slot(ifc.id)] = depth;
        }
        let p = self.pool.stats();
        m.mbuf_acquired = p.acquired;
        m.mbuf_recycled = p.recycled;
        m.mbuf_fresh = p.fresh;
        let f = self.aiu.flow_stats();
        m.flow_admission_denied = f.denied;
        m.flow_inline_expired = f.inline_expired;
        m.flow_evicted_lru = f.evicted_lru;
        m.flow_resize_steps = f.resize_steps;
        let c = self.routes.fib_cache_stats();
        m.fib_cache_hit = c.hits;
        m.fib_cache_miss = c.misses;
        m
    }

    /// Snapshot and reset the metrics registry (drain between bench runs).
    pub fn take_metrics(&mut self) -> MetricsSnapshot {
        let snap = self.metrics_snapshot();
        self.metrics = MetricsRegistry::default();
        snap
    }

    /// The event tracer (read side: enable state, dumps).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The event tracer (write side: enable/mask categories).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Classifier access statistics.
    pub fn filter_stats(&self) -> rp_classifier::LookupStats {
        self.aiu.filter_stats()
    }

    /// Number of interfaces.
    pub fn interface_count(&self) -> usize {
        self.interfaces.len()
    }

    /// Direct AIU access for tests and the testbench.
    pub fn aiu_mut(&mut self) -> &mut Aiu<InstanceRef> {
        &mut self.aiu
    }

    /// Supervision snapshot of every tracked instance (pmgr `health`).
    pub fn health_reports(&self) -> Vec<HealthReport> {
        self.supervisor.reports()
    }

    /// The supervisor (policy and health inspection).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Human-readable dump of a gate's installed filters (pmgr `show`).
    pub fn describe_filters(&self, gate: Gate) -> Vec<String> {
        let table = self.aiu.filter_table(gate.index());
        table
            .filter_ids()
            .into_iter()
            .filter_map(|id| {
                table
                    .get(id)
                    .map(|(spec, inst)| format!("filter {} {} → {}", id.0, spec, inst.describe()))
            })
            .collect()
    }

    /// Human-readable dump of every loaded plugin's instances.
    pub fn describe_instances(&self) -> Vec<String> {
        let mut out = Vec::new();
        for name in self.pcu.plugin_names() {
            if let Ok(ids) = self.pcu.instances(&name) {
                for id in ids {
                    if let Ok(inst) = self.pcu.instance(&name, id) {
                        out.push(format!("{name} {}: {}", id.0, inst.describe()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugins::register_builtin_factories;
    use rp_packet::builder::PacketSpec;
    use std::net::Ipv6Addr;

    fn v6(n: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n))
    }

    fn base_router() -> Router {
        let mut r = Router::new(RouterConfig {
            verify_checksums: false,
            ..RouterConfig::default()
        });
        register_builtin_factories(&mut r.loader);
        r
    }

    fn udp(n: u16) -> Mbuf {
        Mbuf::new(PacketSpec::udp(v6(n), v6(900), 5, 6, 32).build(), 0)
    }

    #[test]
    fn route_add_remove() {
        let mut r = base_router();
        assert!(matches!(
            r.receive(udp(1)),
            crate::ip_core::Disposition::Dropped(_)
        ));
        r.add_route(v6(0), 32, 1);
        assert_eq!(r.receive(udp(1)), crate::ip_core::Disposition::Forwarded(1));
        assert!(r.remove_route(v6(0), 32));
        assert!(!r.remove_route(v6(0), 32));
        assert!(matches!(
            r.receive(udp(2)),
            crate::ip_core::Disposition::Dropped(_)
        ));
    }

    #[test]
    fn route_to_missing_interface_drops() {
        let mut r = base_router();
        r.add_route(v6(0), 32, 99); // only 4 interfaces exist
        assert!(matches!(
            r.receive(udp(1)),
            crate::ip_core::Disposition::Dropped(_)
        ));
        assert_eq!(r.stats().dropped_no_route, 1);
    }

    #[test]
    fn default_scheduler_requires_scheduler_instance() {
        let mut r = base_router();
        crate::pmgr::run_script(&mut r, "load null\ncreate null").unwrap();
        let err = r
            .set_default_scheduler(1, "null", InstanceId(0))
            .unwrap_err();
        assert!(matches!(err, PluginError::BadConfig(_)));
        crate::pmgr::run_script(&mut r, "load fifo\ncreate fifo").unwrap();
        r.set_default_scheduler(1, "fifo", InstanceId(0)).unwrap();
    }

    #[test]
    fn pump_without_schedulers_is_zero() {
        let mut r = base_router();
        assert_eq!(r.pump(0, 16), 0);
        assert_eq!(r.interface_count(), 4);
    }

    #[test]
    fn register_unknown_instance_fails() {
        let mut r = base_router();
        crate::pmgr::run_script(&mut r, "load null").unwrap();
        let err = r
            .send_message(
                "null",
                crate::message::PluginMsg::RegisterInstance {
                    id: InstanceId(9),
                    gate: Gate::Stats,
                    filter: rp_classifier::FilterSpec::any(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, PluginError::NoSuchInstance(_)));
    }

    #[test]
    fn deregister_unknown_filter_fails() {
        let mut r = base_router();
        crate::pmgr::run_script(&mut r, "load null\ncreate null").unwrap();
        let err = r
            .send_message(
                "null",
                crate::message::PluginMsg::DeregisterInstance {
                    gate: Gate::Stats,
                    filter: rp_classifier::FilterId(42),
                },
            )
            .unwrap_err();
        assert!(matches!(err, PluginError::Filter(_)));
    }
}
