//! The Plugin Control Unit (paper §4): "a very simple component managing a
//! table for each plugin type to store the plugin's names and callback
//! functions. Once loaded into the kernel, plugins register their callback
//! function through a function call to the PCU. All control path
//! communication to the plugins goes through the PCU."
//!
//! The PCU owns the plugin registry and the per-plugin instance tables; it
//! does **not** know about filters or flows — `register_instance` /
//! `deregister_instance` need the AIU, so [`crate::router::Router`]
//! orchestrates those and calls back into the PCU for the bookkeeping.

use crate::plugin::{InstanceId, InstanceRef, Plugin, PluginCode, PluginError, PluginType};
use std::collections::HashMap;

struct Registered {
    plugin: Box<dyn Plugin>,
    code: PluginCode,
    instances: HashMap<InstanceId, InstanceRef>,
    next_instance: u32,
}

/// The PCU.
#[derive(Default)]
pub struct Pcu {
    plugins: HashMap<String, Registered>,
}

impl Pcu {
    /// Empty PCU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a loaded plugin's callback object (what a module does on
    /// `modload`). Fails if the name is taken.
    pub fn register(&mut self, plugin: Box<dyn Plugin>) -> Result<(), PluginError> {
        let name = plugin.name().to_string();
        if self.plugins.contains_key(&name) {
            return Err(PluginError::Busy(format!("plugin {name} already loaded")));
        }
        let code = plugin.code();
        self.plugins.insert(
            name,
            Registered {
                plugin,
                code,
                instances: HashMap::new(),
                next_instance: 0,
            },
        );
        Ok(())
    }

    /// Unregister a plugin (module unload). Refused while instances live.
    pub fn unregister(&mut self, name: &str) -> Result<(), PluginError> {
        let reg = self
            .plugins
            .get(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?;
        if !reg.instances.is_empty() {
            return Err(PluginError::Busy(format!(
                "plugin {name} has {} live instance(s)",
                reg.instances.len()
            )));
        }
        self.plugins.remove(name);
        Ok(())
    }

    /// Loaded plugin names (sorted, for `pmgr info`).
    pub fn plugin_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.plugins.keys().cloned().collect();
        v.sort();
        v
    }

    /// A plugin's code.
    pub fn code(&self, name: &str) -> Result<PluginCode, PluginError> {
        self.plugins
            .get(name)
            .map(|r| r.code)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))
    }

    /// Plugins of a given type (gate dispatch uses the AIU, but diagnostics
    /// want this view).
    pub fn plugins_of_type(&self, ty: PluginType) -> Vec<String> {
        let mut v: Vec<String> = self
            .plugins
            .iter()
            .filter(|(_, r)| r.code.plugin_type() == ty)
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    /// `create_instance`: forward to the plugin, store the instance.
    pub fn create_instance(
        &mut self,
        name: &str,
        config: &str,
    ) -> Result<(InstanceId, InstanceRef), PluginError> {
        let reg = self
            .plugins
            .get_mut(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?;
        let inst = reg.plugin.create_instance(config)?;
        let id = InstanceId(reg.next_instance);
        reg.next_instance += 1;
        reg.instances.insert(id, inst.clone());
        Ok((id, inst))
    }

    /// `free_instance`: drop the PCU's reference and notify the plugin.
    /// The caller (Router) must already have purged flow/filter bindings.
    pub fn free_instance(&mut self, name: &str, id: InstanceId) -> Result<(), PluginError> {
        let reg = self
            .plugins
            .get_mut(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?;
        let inst = reg
            .instances
            .remove(&id)
            .ok_or(PluginError::NoSuchInstance(id))?;
        reg.plugin.free_instance(&inst);
        Ok(())
    }

    /// Fetch an instance handle.
    pub fn instance(&self, name: &str, id: InstanceId) -> Result<InstanceRef, PluginError> {
        self.plugins
            .get(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?
            .instances
            .get(&id)
            .cloned()
            .ok_or(PluginError::NoSuchInstance(id))
    }

    /// Instances of a plugin (sorted ids).
    pub fn instances(&self, name: &str) -> Result<Vec<InstanceId>, PluginError> {
        let reg = self
            .plugins
            .get(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?;
        let mut v: Vec<InstanceId> = reg.instances.keys().copied().collect();
        v.sort();
        Ok(v)
    }

    /// Dispatch a plugin-specific message.
    pub fn custom_message(
        &mut self,
        name: &str,
        instance: Option<InstanceId>,
        msg: &str,
        args: &str,
    ) -> Result<String, PluginError> {
        let reg = self
            .plugins
            .get_mut(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?;
        let inst = match instance {
            Some(id) => Some(
                reg.instances
                    .get(&id)
                    .cloned()
                    .ok_or(PluginError::NoSuchInstance(id))?,
            ),
            None => None,
        };
        reg.plugin.custom_message(inst.as_ref(), msg, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::{PacketCtx, PluginAction, PluginInstance};
    use rp_packet::Mbuf;
    use std::sync::Arc;

    struct NullInstance;
    impl PluginInstance for NullInstance {
        fn handle_packet(&self, _m: &mut Mbuf, _c: &mut PacketCtx<'_>) -> PluginAction {
            PluginAction::Continue
        }
    }

    struct TestPlugin {
        created: u32,
    }
    impl Plugin for TestPlugin {
        fn name(&self) -> &str {
            "test"
        }
        fn code(&self) -> PluginCode {
            PluginCode::new(PluginType::STATS, 1)
        }
        fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError> {
            if config == "bad" {
                return Err(PluginError::BadConfig("bad".into()));
            }
            self.created += 1;
            Ok(Arc::new(NullInstance))
        }
        fn custom_message(
            &mut self,
            instance: Option<&InstanceRef>,
            name: &str,
            args: &str,
        ) -> Result<String, PluginError> {
            match name {
                "echo" => Ok(format!(
                    "{}{}",
                    args,
                    if instance.is_some() { "@inst" } else { "" }
                )),
                other => Err(PluginError::UnknownMessage(other.to_string())),
            }
        }
    }

    fn pcu() -> Pcu {
        let mut p = Pcu::new();
        p.register(Box::new(TestPlugin { created: 0 })).unwrap();
        p
    }

    #[test]
    fn lifecycle() {
        let mut p = pcu();
        assert_eq!(p.plugin_names(), vec!["test"]);
        let (id, _inst) = p.create_instance("test", "").unwrap();
        assert_eq!(p.instances("test").unwrap(), vec![id]);
        // Unload refused while the instance lives.
        assert!(matches!(p.unregister("test"), Err(PluginError::Busy(_))));
        p.free_instance("test", id).unwrap();
        assert!(p.instances("test").unwrap().is_empty());
        p.unregister("test").unwrap();
        assert!(p.plugin_names().is_empty());
    }

    #[test]
    fn duplicate_and_missing() {
        let mut p = pcu();
        assert!(matches!(
            p.register(Box::new(TestPlugin { created: 0 })),
            Err(PluginError::Busy(_))
        ));
        assert!(matches!(
            p.create_instance("nope", ""),
            Err(PluginError::NoSuchPlugin(_))
        ));
        assert!(matches!(
            p.free_instance("test", InstanceId(7)),
            Err(PluginError::NoSuchInstance(_))
        ));
    }

    #[test]
    fn bad_config_propagates() {
        let mut p = pcu();
        assert!(matches!(
            p.create_instance("test", "bad"),
            Err(PluginError::BadConfig(_))
        ));
    }

    #[test]
    fn custom_messages() {
        let mut p = pcu();
        let (id, _) = p.create_instance("test", "").unwrap();
        assert_eq!(p.custom_message("test", None, "echo", "hi").unwrap(), "hi");
        assert_eq!(
            p.custom_message("test", Some(id), "echo", "hi").unwrap(),
            "hi@inst"
        );
        assert!(matches!(
            p.custom_message("test", None, "bogus", ""),
            Err(PluginError::UnknownMessage(_))
        ));
        assert!(matches!(
            p.custom_message("test", Some(InstanceId(99)), "echo", ""),
            Err(PluginError::NoSuchInstance(_))
        ));
    }

    #[test]
    fn type_query() {
        let p = pcu();
        assert_eq!(p.plugins_of_type(PluginType::STATS), vec!["test"]);
        assert!(p.plugins_of_type(PluginType::PACKET_SCHED).is_empty());
        assert_eq!(
            p.code("test").unwrap(),
            PluginCode::new(PluginType::STATS, 1)
        );
    }
}
