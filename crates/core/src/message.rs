//! The standardized plugin message set (paper §4) plus plugin-specific
//! messages. All control-path communication with plugins flows through
//! these messages — from the Plugin Manager, the daemons (SSP/RSVP), or
//! other kernel components — dispatched by the PCU.

use crate::gate::Gate;
use crate::plugin::InstanceId;
use rp_classifier::{FilterId, FilterSpec};

/// A control message addressed to a plugin.
#[derive(Debug, Clone)]
pub enum PluginMsg {
    /// Create a configured instance of the plugin.
    CreateInstance {
        /// Plugin-specific configuration string.
        config: String,
    },
    /// Free an instance; all references are removed from the flow and
    /// filter tables first.
    FreeInstance {
        /// The instance to free.
        id: InstanceId,
    },
    /// Bind an instance to a set of flows: installs `filter` in `gate`'s
    /// filter table pointing at the instance. "The same instance may be
    /// registered multiple times with different filter specifications."
    RegisterInstance {
        /// The instance to bind.
        id: InstanceId,
        /// The gate whose filter table receives the filter.
        gate: Gate,
        /// The flow set specification.
        filter: FilterSpec,
    },
    /// Remove the binding between a filter and the instance.
    DeregisterInstance {
        /// The gate the filter lives in.
        gate: Gate,
        /// The filter to remove.
        filter: FilterId,
    },
    /// A plugin-specific message, optionally addressed to one instance.
    Custom {
        /// Target instance (None = the plugin itself).
        instance: Option<InstanceId>,
        /// Message name.
        name: String,
        /// Message arguments.
        args: String,
    },
}

/// Replies to [`PluginMsg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginReply {
    /// Instance created.
    InstanceCreated(InstanceId),
    /// Instance freed.
    InstanceFreed,
    /// Filter installed and bound.
    Registered(FilterId),
    /// Binding removed.
    Deregistered,
    /// Plugin-specific textual reply.
    Text(String),
}

impl PluginReply {
    /// Unwrap an `InstanceCreated` reply (test/config convenience).
    pub fn instance(&self) -> Option<InstanceId> {
        match self {
            PluginReply::InstanceCreated(i) => Some(*i),
            _ => None,
        }
    }

    /// Unwrap a `Registered` reply.
    pub fn filter(&self) -> Option<FilterId> {
        match self {
            PluginReply::Registered(f) => Some(*f),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_helpers() {
        assert_eq!(
            PluginReply::InstanceCreated(InstanceId(3)).instance(),
            Some(InstanceId(3))
        );
        assert_eq!(PluginReply::InstanceFreed.instance(), None);
        assert_eq!(
            PluginReply::Registered(FilterId(9)).filter(),
            Some(FilterId(9))
        );
        assert_eq!(PluginReply::Text("x".into()).filter(), None);
    }
}
