//! # router-core — the Router Plugins framework
//!
//! The paper's primary contribution: a modular, extensible, flow-aware
//! router kernel. The pieces map one-to-one onto the paper's architecture
//! (Figures 2 and 3):
//!
//! * [`plugin`] — the `Plugin` / `PluginInstance` traits, 32-bit plugin
//!   codes (`type << 16 | implementation`), and the standardized message
//!   set (`create_instance`, `free_instance`, `register_instance`,
//!   `deregister_instance`, plus plugin-specific messages).
//! * [`pcu`] — the Plugin Control Unit: registers plugin callbacks,
//!   dispatches control messages, manages instances.
//! * [`loader`] — the `modload` analogue: named plugin factories that can
//!   be registered ("loaded") and unregistered at run time.
//! * [`gate`] — gate identifiers and the fast-path dispatch that consults
//!   the packet's cached flow index (FIX) before falling back to the AIU.
//! * [`ip_core`] — the streamlined IPv4/IPv6 core: validate, TTL/hop
//!   limit, route, traverse gates, emit.
//! * [`router`] — the assembled EISR: PCU + AIU + routing table +
//!   interfaces, exposing the Router Plugin Library control API.
//! * [`pmgr`] — the Plugin Manager command language (the `pmgr` tool).
//! * [`plugins`] — bundled plugins: IPv6 options, IPsec AH/ESP, DRR,
//!   H-FSC, FIFO, RED, BMP classifiers, statistics, firewall.
//! * [`monolithic`] — the Table 3 baselines: an unmodified best-effort
//!   fast path and an ALTQ-style hardwired DRR kernel.
//! * [`supervisor`] — plugin fault isolation: panic containment, health
//!   tracking (Healthy → Degraded → Quarantined), and restart with
//!   capped exponential backoff in simulated time.
//! * [`dataplane`] — the sharded parallel data plane: N flow-affine
//!   worker shards (each a complete single-threaded router) behind the
//!   single control plane.
//! * [`obs`] — the always-on observability layer: a fixed-storage metrics
//!   registry (counters + log-2 histograms, shard-private and merged on
//!   read) and a bounded ring-buffer event tracer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The data path must never panic on behalf of a packet: `unwrap`/`expect`
// in non-test code need an explicit, justified `#[allow]` at the site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod dataplane;
pub mod gate;
pub mod ip_core;
pub mod loader;
pub mod message;
pub mod monolithic;
pub mod obs;
pub mod pcu;
pub mod plugin;
pub mod plugins;
pub mod pmgr;
pub mod router;
pub mod supervisor;

pub use dataplane::{
    CommandJournal, ControlPlane, DispatchMode, JournaledCmd, ParallelRouter, ParallelRouterConfig,
    ShardStatus,
};
pub use gate::Gate;
pub use message::{PluginMsg, PluginReply};
pub use obs::{MetricsRegistry, MetricsSnapshot, TraceCategory, TraceEvent, Tracer};
pub use plugin::{InstanceId, Plugin, PluginAction, PluginCode, PluginInstance, PluginType};
pub use router::{Router, RouterConfig};
pub use supervisor::{FaultPolicy, HealthState};
