//! Table 3 baselines.
//!
//! * [`BestEffortRouter`] — the "unmodified NetBSD 1.2.1" row: parse,
//!   age, route, emit. No gates, no classifier, no flow cache.
//! * [`AltqDrrRouter`] — the "NetBSD with ALTQ and DRR" row: the same
//!   fast path with a **hard-wired** DRR scheduler fed by ALTQ-WFQ-style
//!   classification (hash the header fields onto a fixed number of
//!   queues), exactly the design the paper's plugin DRR is compared
//!   against ("ALTQ came with a basic packet classifier which mapped
//!   flows to these queues by hashing on fields in the packet header").

use crate::ip_core::{
    dst_of, validate_and_age, DataPathStats, Disposition, DropReason, RoutingTable,
};
use rp_classifier::flow_table::flow_hash;
use rp_packet::mbuf::IfIndex;
use rp_packet::{FlowTuple, Mbuf};
use rp_sched::link::{SchedPacket, Scheduler};
use rp_sched::DrrScheduler;
use std::collections::HashMap;
use std::net::IpAddr;

/// The plain best-effort fast path.
pub struct BestEffortRouter {
    /// Routing table.
    pub routes: RoutingTable,
    verify_checksums: bool,
    stats: DataPathStats,
    tx_logs: Vec<Vec<Mbuf>>,
}

impl BestEffortRouter {
    /// Build with `interfaces` egress ports.
    pub fn new(interfaces: usize, verify_checksums: bool) -> Self {
        BestEffortRouter {
            routes: RoutingTable::new(),
            verify_checksums,
            stats: DataPathStats::default(),
            tx_logs: (0..interfaces).map(|_| Vec::new()).collect(),
        }
    }

    /// Add a route.
    pub fn add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.routes
            .add(addr, prefix_len, crate::ip_core::RouteEntry { tx_if });
    }

    /// Forward one packet.
    pub fn receive(&mut self, mut mbuf: Mbuf) -> Disposition {
        self.stats.received += 1;
        if let Err(r) = validate_and_age(&mut mbuf, self.verify_checksums) {
            self.stats.dropped_malformed += 1;
            return Disposition::Dropped(r);
        }
        let dst = match dst_of(&mbuf) {
            Ok(d) => d,
            Err(r) => {
                self.stats.dropped_malformed += 1;
                return Disposition::Dropped(r);
            }
        };
        match self.routes.lookup_cached(dst) {
            Some(e) if (e.tx_if as usize) < self.tx_logs.len() => {
                self.stats.forwarded += 1;
                self.tx_logs[e.tx_if as usize].push(mbuf);
                Disposition::Forwarded(e.tx_if)
            }
            _ => {
                self.stats.dropped_no_route += 1;
                Disposition::Dropped(DropReason::NoRoute)
            }
        }
    }

    /// Take transmitted packets.
    pub fn take_tx(&mut self, iface: IfIndex) -> Vec<Mbuf> {
        std::mem::take(&mut self.tx_logs[iface as usize])
    }

    /// Statistics.
    pub fn stats(&self) -> DataPathStats {
        self.stats
    }
}

/// The hard-wired ALTQ-style DRR kernel: best-effort fast path with a DRR
/// scheduler bolted onto each egress interface and a fixed-queue hash
/// classifier in front of it.
pub struct AltqDrrRouter {
    /// Routing table.
    pub routes: RoutingTable,
    verify_checksums: bool,
    stats: DataPathStats,
    /// DRR + packet store per interface.
    queues: Vec<(DrrScheduler, HashMap<u64, Mbuf>, u64)>,
    tx_logs: Vec<Vec<Mbuf>>,
    nqueues: u32,
}

impl AltqDrrRouter {
    /// Build with `interfaces` ports, ALTQ-style `nqueues` hash queues per
    /// port, and the given DRR quantum.
    pub fn new(interfaces: usize, nqueues: u32, quantum: u32, verify_checksums: bool) -> Self {
        AltqDrrRouter {
            routes: RoutingTable::new(),
            verify_checksums,
            stats: DataPathStats::default(),
            queues: (0..interfaces)
                .map(|_| (DrrScheduler::new(quantum, 512), HashMap::new(), 0))
                .collect(),
            tx_logs: (0..interfaces).map(|_| Vec::new()).collect(),
            nqueues,
        }
    }

    /// Add a route.
    pub fn add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.routes
            .add(addr, prefix_len, crate::ip_core::RouteEntry { tx_if });
    }

    /// Forward one packet (enqueues into the egress DRR).
    pub fn receive(&mut self, mut mbuf: Mbuf, now_ns: u64) -> Disposition {
        self.stats.received += 1;
        if let Err(r) = validate_and_age(&mut mbuf, self.verify_checksums) {
            self.stats.dropped_malformed += 1;
            return Disposition::Dropped(r);
        }
        let dst = match dst_of(&mbuf) {
            Ok(d) => d,
            Err(r) => {
                self.stats.dropped_malformed += 1;
                return Disposition::Dropped(r);
            }
        };
        let Some(e) = self.routes.lookup_cached(dst) else {
            self.stats.dropped_no_route += 1;
            return Disposition::Dropped(DropReason::NoRoute);
        };
        let tx = e.tx_if as usize;
        if tx >= self.queues.len() {
            self.stats.dropped_no_route += 1;
            return Disposition::Dropped(DropReason::NoRoute);
        }
        // ALTQ-WFQ classification: hash the five-tuple onto a fixed queue.
        let queue = match FlowTuple::from_mbuf(&mbuf) {
            Ok(t) => flow_hash(&t) % self.nqueues,
            Err(_) => 0,
        };
        let (drr, store, next) = &mut self.queues[tx];
        let cookie = *next;
        *next += 1;
        let len = mbuf.len() as u32;
        store.insert(cookie, mbuf);
        let ok = drr.enqueue(
            SchedPacket {
                flow: queue,
                len,
                arrival_ns: now_ns,
                cookie,
            },
            now_ns,
        );
        if ok {
            self.stats.forwarded += 1;
            Disposition::Queued(e.tx_if)
        } else {
            store.remove(&cookie);
            self.stats.dropped_queue += 1;
            Disposition::Dropped(DropReason::QueueFull)
        }
    }

    /// Drain up to `max` packets from an interface's DRR.
    pub fn pump(&mut self, iface: IfIndex, max: usize, now_ns: u64) -> usize {
        let (drr, store, _) = &mut self.queues[iface as usize];
        let mut sent = 0;
        while sent < max {
            let Some(pkt) = drr.dequeue(now_ns) else {
                break;
            };
            if let Some(m) = store.remove(&pkt.cookie) {
                self.tx_logs[iface as usize].push(m);
                sent += 1;
            }
        }
        sent
    }

    /// Take transmitted packets.
    pub fn take_tx(&mut self, iface: IfIndex) -> Vec<Mbuf> {
        std::mem::take(&mut self.tx_logs[iface as usize])
    }

    /// Statistics.
    pub fn stats(&self) -> DataPathStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_packet::builder::PacketSpec;
    use std::net::Ipv6Addr;

    fn v6(a: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, a))
    }

    fn pkt(src: u16, dst: u16) -> Mbuf {
        Mbuf::new(
            PacketSpec::udp(v6(src), v6(dst), 1000, 2000, 256).build(),
            0,
        )
    }

    #[test]
    fn best_effort_forwards() {
        let mut r = BestEffortRouter::new(2, true);
        r.add_route(v6(0), 64, 1);
        assert_eq!(r.receive(pkt(1, 2)), Disposition::Forwarded(1));
        assert_eq!(r.take_tx(1).len(), 1);
        assert_eq!(r.stats().forwarded, 1);
        // No route → drop.
        let other = IpAddr::V6(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1));
        let m = Mbuf::new(PacketSpec::udp(v6(1), other, 1, 2, 10).build(), 0);
        assert_eq!(r.receive(m), Disposition::Dropped(DropReason::NoRoute));
    }

    #[test]
    fn altq_queues_and_pumps() {
        let mut r = AltqDrrRouter::new(2, 8, 9180, true);
        r.add_route(v6(0), 64, 1);
        for _ in 0..5 {
            assert_eq!(r.receive(pkt(1, 2), 0), Disposition::Queued(1));
        }
        assert_eq!(r.pump(1, 100, 0), 5);
        assert_eq!(r.take_tx(1).len(), 5);
    }

    #[test]
    fn altq_hashes_flows_to_queues() {
        // Two flows, tiny queue count: both still get service.
        let mut r = AltqDrrRouter::new(1, 2, 9180, true);
        r.add_route(v6(0), 64, 0);
        for i in 0..4 {
            r.receive(pkt(1, 2), i);
            r.receive(pkt(3, 2), i);
        }
        assert_eq!(r.pump(0, 100, 10), 8);
    }
}
