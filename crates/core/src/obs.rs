//! The unified observability layer: a metrics registry of monotonic
//! counters and log-2 histograms, plus a bounded ring-buffer event tracer.
//!
//! The paper's whole argument is quantitative (Tables 2/3 count memory
//! accesses and cycles per gate), so the data path must be measurable
//! without perturbing what it measures. The design rules here:
//!
//! * **Fixed storage** — every counter and histogram lives in a fixed
//!   array inside [`MetricsRegistry`]; the hot path never allocates.
//! * **Shard-private, merge-on-read** — each data-plane shard owns a
//!   private registry (no sharing, no locks, same discipline as the flow
//!   table); the control plane merges snapshots with
//!   [`MetricsRegistry::absorb`], the same pattern as
//!   `FlowTableStats::absorb`.
//! * **Sampled latency** — per-gate plugin-invocation latency is measured
//!   with the OS monotonic clock on every [`LATENCY_SAMPLE`]-th call, so
//!   the steady-state cost of the clock reads amortizes to well under a
//!   nanosecond per packet.
//! * **Tracing is off until asked for** — [`Tracer::record_with`] takes a
//!   closure so the event string is only built when the category is
//!   enabled; the ring overwrites its oldest entry when full.

use crate::gate::{Gate, ALL_GATES, GATE_COUNT};
use crate::ip_core::DropReason;
use std::fmt::Write as _;

/// Number of log-2 buckets in a [`Histogram`]. Bucket 0 holds the value
/// 0; bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`; the last bucket
/// also absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Per-gate plugin-call latency is measured on every `LATENCY_SAMPLE`-th
/// call (power of two; the sampling test divides by this).
pub const LATENCY_SAMPLE: u64 = 64;

/// Metrics index space for interfaces. Routers with more interfaces fold
/// the overflow into the last slot (see [`iface_slot`]).
pub const MAX_INTERFACES: usize = 16;

/// Map an interface id to its metrics slot.
#[inline]
pub fn iface_slot(iface: u32) -> usize {
    (iface as usize).min(MAX_INTERFACES - 1)
}

/// A log-2-bucketed histogram with fixed storage (no allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Occupancy per log-2 bucket (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (wrapping).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The bucket a value falls into: its significant-bit count, capped.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive lower bound of a bucket's value range.
    pub fn bucket_floor(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Record one value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Fold another histogram into this one.
    pub fn absorb(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the log-2
    /// buckets: walk to the bucket holding the rank-`⌈q·count⌉`
    /// observation and return that bucket's midpoint (floor for bucket
    /// 0). The estimate is bounded by the bucket resolution — a factor
    /// of 2 — which is exactly the precision an SLO gate on p50/p99
    /// needs without per-sample storage. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let floor = Self::bucket_floor(b);
                if b == 0 {
                    return 0;
                }
                // Midpoint of [2^(b-1), 2^b): floor + floor/2.
                return floor + floor / 2;
            }
        }
        Self::bucket_floor(HIST_BUCKETS - 1)
    }

    /// Buckets with trailing zeros trimmed (for compact rendering).
    pub fn trimmed_buckets(&self) -> &[u64] {
        let last = self
            .buckets
            .iter()
            .rposition(|b| *b != 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        &self.buckets[..last]
    }
}

/// Number of distinct [`DropReason`] slots: the scalar reasons plus one
/// per gate for `Plugin(gate)` and `PluginFault(gate)`.
pub const DROP_KINDS: usize = 12 + 2 * GATE_COUNT;

/// Map a drop reason to its counter slot.
pub fn drop_reason_index(reason: DropReason) -> usize {
    match reason {
        DropReason::Malformed => 0,
        DropReason::BadChecksum => 1,
        DropReason::TtlExpired => 2,
        DropReason::NoRoute => 3,
        DropReason::QueueFull => 4,
        DropReason::TooBig => 5,
        DropReason::Internal => 6,
        DropReason::ShardOverload => 7,
        DropReason::ShardDown => 8,
        DropReason::DeviceRx => 9,
        DropReason::DeviceTx => 10,
        DropReason::DeadlineExceeded => 11,
        DropReason::Plugin(g) => 12 + g.index(),
        DropReason::PluginFault(g) => 12 + GATE_COUNT + g.index(),
    }
}

/// Stable label of a drop-reason slot (metrics key names).
pub fn drop_reason_label(slot: usize) -> String {
    match slot {
        0 => "malformed".to_string(),
        1 => "bad_checksum".to_string(),
        2 => "ttl_expired".to_string(),
        3 => "no_route".to_string(),
        4 => "queue_full".to_string(),
        5 => "too_big".to_string(),
        6 => "internal".to_string(),
        7 => "shard_overload".to_string(),
        8 => "shard_down".to_string(),
        9 => "device_rx".to_string(),
        10 => "device_tx".to_string(),
        11 => "deadline_exceeded".to_string(),
        s if s < 12 + GATE_COUNT => format!("plugin_{}", ALL_GATES[s - 12]),
        s => format!("plugin_fault_{}", ALL_GATES[s - 12 - GATE_COUNT]),
    }
}

/// The metrics registry: every data-path counter and histogram, in fixed
/// storage. One per router; one per shard on the parallel data plane,
/// merged on read. A snapshot is just a copy.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsRegistry {
    /// Plugin invocations per gate.
    pub gate_calls: [u64; GATE_COUNT],
    /// Sampled plugin-invocation latency per gate, in nanoseconds (one
    /// observation per [`LATENCY_SAMPLE`] calls).
    pub gate_latency: [Histogram; GATE_COUNT],
    /// Flow-cache hits observed at each gate's classification point.
    pub class_hits: [u64; GATE_COUNT],
    /// Flow-cache misses (new flow records) per classifying gate.
    pub class_misses: [u64; GATE_COUNT],
    /// Flow records recycled under pressure, attributed to the gate whose
    /// classification triggered the recycling.
    pub class_recycled: [u64; GATE_COUNT],
    /// Flow records reclaimed by idle expiry.
    pub flows_expired: u64,
    /// Flow records created with the port-less fragment key (IP fragments
    /// classify on `<src, dst, proto, rx_if>`; counted at flow creation).
    pub fragment_flows: u64,
    /// Flow-record requests refused by admission control (flow table at
    /// its cap with every record busy — the thrash-defense path; a gauge
    /// sampled from the flow table at snapshot time).
    pub flow_admission_denied: u64,
    /// Idle flow records reclaimed inline at the allocation cap (gauge
    /// sampled from the flow table at snapshot time).
    pub flow_inline_expired: u64,
    /// Live-but-coldest flow records evicted inline at the allocation cap
    /// (LRU admission; gauge sampled from the flow table at snapshot
    /// time).
    pub flow_evicted_lru: u64,
    /// Old hash buckets migrated by the flow table's incremental resize
    /// (gauge sampled from the flow table at snapshot time).
    pub flow_resize_steps: u64,
    /// Route lookups answered by the hot-prefix FIB cache (gauge sampled
    /// from the routing table at snapshot time).
    pub fib_cache_hit: u64,
    /// Route lookups that fell through the FIB cache to the full trie
    /// (gauge sampled from the routing table at snapshot time).
    pub fib_cache_miss: u64,
    /// Dropped packets by [`DropReason`] slot (see [`drop_reason_index`]).
    pub drops: [u64; DROP_KINDS],
    /// Packets received per interface slot.
    pub if_rx_packets: [u64; MAX_INTERFACES],
    /// Bytes received per interface slot.
    pub if_rx_bytes: [u64; MAX_INTERFACES],
    /// Packets transmitted per interface slot.
    pub if_tx_packets: [u64; MAX_INTERFACES],
    /// Bytes transmitted per interface slot.
    pub if_tx_bytes: [u64; MAX_INTERFACES],
    /// Scheduler queue depth per interface — a gauge sampled at snapshot
    /// time. Merging sums the shards (total backlog across the array).
    pub queue_depth: [u64; MAX_INTERFACES],
    /// Received packet sizes in bytes.
    pub pkt_size: Histogram,
    /// End-to-end packet sojourn (coarse ingress stamp at the wire to
    /// shard dequeue) in nanoseconds. Fed by the dispatch/shard layer
    /// from the `Mbuf` ingress timestamp; empty when no I/O plane (or
    /// driver) stamps ingress. p50/p99 come from
    /// [`Histogram::quantile`].
    pub sojourn_ns: Histogram,
    /// Mbuf-pool buffers handed out (cumulative; sampled from the
    /// router's pool at snapshot time, like the queue-depth gauge).
    pub mbuf_acquired: u64,
    /// Mbuf-pool buffers returned to the free list for reuse.
    pub mbuf_recycled: u64,
    /// Mbuf-pool acquisitions that had to touch the allocator. A moving
    /// value here in steady state means the fast path is allocating.
    pub mbuf_fresh: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`] (the registry is plain
/// data, so a snapshot is the registry itself).
pub type MetricsSnapshot = MetricsRegistry;

impl MetricsRegistry {
    /// Count one plugin invocation; returns true when this call should be
    /// latency-sampled.
    #[inline]
    pub fn note_gate_call(&mut self, gate: Gate) -> bool {
        let n = self.gate_calls[gate.index()];
        self.gate_calls[gate.index()] = n + 1;
        n.is_multiple_of(LATENCY_SAMPLE)
    }

    /// Record a sampled plugin-invocation latency.
    #[inline]
    pub fn note_gate_latency(&mut self, gate: Gate, ns: u64) {
        self.gate_latency[gate.index()].observe(ns);
    }

    /// Count one dropped packet.
    #[inline]
    pub fn note_drop(&mut self, reason: DropReason) {
        self.drops[drop_reason_index(reason)] += 1;
    }

    /// Count one received packet.
    #[inline]
    pub fn note_rx(&mut self, iface: u32, bytes: usize) {
        let s = iface_slot(iface);
        self.if_rx_packets[s] += 1;
        self.if_rx_bytes[s] += bytes as u64;
        self.pkt_size.observe(bytes as u64);
    }

    /// Record one packet's end-to-end sojourn time in nanoseconds.
    #[inline]
    pub fn note_sojourn(&mut self, ns: u64) {
        self.sojourn_ns.observe(ns);
    }

    /// Count one transmitted packet.
    #[inline]
    pub fn note_tx(&mut self, iface: u32, bytes: usize) {
        let s = iface_slot(iface);
        self.if_tx_packets[s] += 1;
        self.if_tx_bytes[s] += bytes as u64;
    }

    /// Fold another registry into this one (the control plane's merge of
    /// per-shard registries). Counters and histograms add; the queue-depth
    /// gauge also adds, giving the total backlog across shards.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for i in 0..GATE_COUNT {
            self.gate_calls[i] += other.gate_calls[i];
            self.gate_latency[i].absorb(&other.gate_latency[i]);
            self.class_hits[i] += other.class_hits[i];
            self.class_misses[i] += other.class_misses[i];
            self.class_recycled[i] += other.class_recycled[i];
        }
        self.flows_expired += other.flows_expired;
        self.fragment_flows += other.fragment_flows;
        self.flow_admission_denied += other.flow_admission_denied;
        self.flow_inline_expired += other.flow_inline_expired;
        self.flow_evicted_lru += other.flow_evicted_lru;
        self.flow_resize_steps += other.flow_resize_steps;
        self.fib_cache_hit += other.fib_cache_hit;
        self.fib_cache_miss += other.fib_cache_miss;
        for i in 0..DROP_KINDS {
            self.drops[i] += other.drops[i];
        }
        for i in 0..MAX_INTERFACES {
            self.if_rx_packets[i] += other.if_rx_packets[i];
            self.if_rx_bytes[i] += other.if_rx_bytes[i];
            self.if_tx_packets[i] += other.if_tx_packets[i];
            self.if_tx_bytes[i] += other.if_tx_bytes[i];
            self.queue_depth[i] += other.queue_depth[i];
        }
        self.pkt_size.absorb(&other.pkt_size);
        self.sojourn_ns.absorb(&other.sojourn_ns);
        self.mbuf_acquired += other.mbuf_acquired;
        self.mbuf_recycled += other.mbuf_recycled;
        self.mbuf_fresh += other.mbuf_fresh;
    }

    /// Total dropped packets across all reasons.
    pub fn dropped_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Human-readable multi-line rendering (pmgr `metrics`). Zero-valued
    /// rows are elided.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for g in ALL_GATES {
            let i = g.index();
            if self.gate_calls[i] == 0 && self.class_hits[i] == 0 && self.class_misses[i] == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "gate {g}: calls={} lat_mean={:.0}ns (n={}) hits={} misses={} recycled={}",
                self.gate_calls[i],
                self.gate_latency[i].mean(),
                self.gate_latency[i].count,
                self.class_hits[i],
                self.class_misses[i],
                self.class_recycled[i],
            );
        }
        let mut drops = String::new();
        for (s, n) in self.drops.iter().enumerate() {
            if *n > 0 {
                let _ = write!(drops, " {}={n}", drop_reason_label(s));
            }
        }
        let _ = writeln!(out, "drops: total={}{drops}", self.dropped_total());
        for i in 0..MAX_INTERFACES {
            if self.if_rx_packets[i] == 0 && self.if_tx_packets[i] == 0 && self.queue_depth[i] == 0
            {
                continue;
            }
            let _ = writeln!(
                out,
                "if{i}: rx={}pkts/{}B tx={}pkts/{}B qdepth={}",
                self.if_rx_packets[i],
                self.if_rx_bytes[i],
                self.if_tx_packets[i],
                self.if_tx_bytes[i],
                self.queue_depth[i],
            );
        }
        let _ = writeln!(
            out,
            "flows: expired={} fragment_keyed={} admission_denied={} inline_expired={} \
             evicted_lru={} resize_steps={}; pkt_size mean={:.0}B (n={})",
            self.flows_expired,
            self.fragment_flows,
            self.flow_admission_denied,
            self.flow_inline_expired,
            self.flow_evicted_lru,
            self.flow_resize_steps,
            self.pkt_size.mean(),
            self.pkt_size.count,
        );
        let _ = writeln!(
            out,
            "fib_cache: hit={} miss={}",
            self.fib_cache_hit, self.fib_cache_miss,
        );
        if self.sojourn_ns.count > 0 {
            let _ = writeln!(
                out,
                "sojourn_ns: p50={} p99={} mean={:.0} (n={})",
                self.sojourn_ns.quantile(0.50),
                self.sojourn_ns.quantile(0.99),
                self.sojourn_ns.mean(),
                self.sojourn_ns.count,
            );
        }
        let _ = writeln!(
            out,
            "mbuf_pool: acquired={} recycled={} fresh={}",
            self.mbuf_acquired, self.mbuf_recycled, self.mbuf_fresh,
        );
        out
    }

    /// Compact JSON rendering. All keys are fixed ASCII identifiers, so no
    /// string escaping is needed; the schema is documented in
    /// EXPERIMENTS.md ("Metrics block schema").
    pub fn render_json(&self) -> String {
        fn hist(h: &Histogram) -> String {
            let buckets = h
                .trimmed_buckets()
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"count\":{},\"sum\":{},\"buckets\":[{buckets}]}}",
                h.count, h.sum
            )
        }
        let mut out = String::from("{\"gates\":{");
        for (n, g) in ALL_GATES.iter().enumerate() {
            let i = g.index();
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{g}\":{{\"calls\":{},\"latency_ns\":{},\"hits\":{},\"misses\":{},\"recycled\":{}}}",
                self.gate_calls[i],
                hist(&self.gate_latency[i]),
                self.class_hits[i],
                self.class_misses[i],
                self.class_recycled[i],
            );
        }
        out.push_str("},\"drops\":{");
        let _ = write!(out, "\"total\":{}", self.dropped_total());
        for (s, n) in self.drops.iter().enumerate() {
            if *n > 0 {
                let _ = write!(out, ",\"{}\":{n}", drop_reason_label(s));
            }
        }
        out.push_str("},\"interfaces\":[");
        let last = (0..MAX_INTERFACES)
            .rposition(|i| {
                self.if_rx_packets[i] != 0 || self.if_tx_packets[i] != 0 || self.queue_depth[i] != 0
            })
            .map(|i| i + 1)
            .unwrap_or(0);
        for i in 0..last {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rx_packets\":{},\"rx_bytes\":{},\"tx_packets\":{},\"tx_bytes\":{},\"queue_depth\":{}}}",
                self.if_rx_packets[i],
                self.if_rx_bytes[i],
                self.if_tx_packets[i],
                self.if_tx_bytes[i],
                self.queue_depth[i],
            );
        }
        let _ = write!(
            out,
            "],\"flows_expired\":{},\"fragment_flows\":{},\
             \"flow_admission_denied\":{},\"flow_inline_expired\":{},\
             \"flow_evicted_lru\":{},\"flow_resize_steps\":{},\
             \"fib_cache_hit\":{},\"fib_cache_miss\":{},\"pkt_size\":{},\
             \"sojourn_ns\":{{\"p50\":{},\"p99\":{},\"hist\":{}}},\
             \"mbuf_pool\":{{\"acquired\":{},\"recycled\":{},\"fresh\":{}}}}}",
            self.flows_expired,
            self.fragment_flows,
            self.flow_admission_denied,
            self.flow_inline_expired,
            self.flow_evicted_lru,
            self.flow_resize_steps,
            self.fib_cache_hit,
            self.fib_cache_miss,
            hist(&self.pkt_size),
            self.sojourn_ns.quantile(0.50),
            self.sojourn_ns.quantile(0.99),
            hist(&self.sojourn_ns),
            self.mbuf_acquired,
            self.mbuf_recycled,
            self.mbuf_fresh,
        );
        out
    }
}

/// Trace-event categories, each independently maskable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// Flow-record lifecycle: created, evicted (recycled), expired.
    Flow,
    /// Filter-table changes: installed, removed.
    Filter,
    /// Plugin supervision: fault, quarantine, restart.
    Plugin,
    /// Shard dispatch (parallel data plane only).
    Shard,
}

/// Number of trace categories.
pub const TRACE_CATEGORIES: usize = 4;

impl TraceCategory {
    /// Index into the tracer's enable mask.
    pub fn index(self) -> usize {
        match self {
            TraceCategory::Flow => 0,
            TraceCategory::Filter => 1,
            TraceCategory::Plugin => 2,
            TraceCategory::Shard => 3,
        }
    }

    /// Stable label (trace dumps, JSON).
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::Flow => "flow",
            TraceCategory::Filter => "filter",
            TraceCategory::Plugin => "plugin",
            TraceCategory::Shard => "shard",
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (counts every recorded event, including
    /// those since overwritten in the ring).
    pub seq: u64,
    /// Router virtual time when the event was recorded.
    pub now_ns: u64,
    /// Event category.
    pub category: TraceCategory,
    /// Human-readable detail line.
    pub detail: String,
}

/// Default tracer ring capacity.
pub const TRACE_CAPACITY: usize = 1024;

/// A bounded ring buffer of [`TraceEvent`]s. When full, the newest event
/// overwrites the oldest; the router never stops to trace. Disabled (the
/// default) the hot path pays one branch and builds no strings.
#[derive(Debug)]
pub struct Tracer {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once the ring is full.
    head: usize,
    seq: u64,
    enabled: bool,
    categories: [bool; TRACE_CATEGORIES],
}

impl Tracer {
    /// A tracer with the given ring capacity (min 1), disabled, with every
    /// category unmasked.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            ring: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            seq: 0,
            enabled: false,
            categories: [true; TRACE_CATEGORIES],
        }
    }

    /// Master switch.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is tracing on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Mask or unmask one category.
    pub fn set_category(&mut self, category: TraceCategory, on: bool) {
        self.categories[category.index()] = on;
    }

    /// Would an event of this category be recorded right now? Check this
    /// before building an event string on a hot path (or use
    /// [`Tracer::record_with`]).
    #[inline]
    pub fn wants(&self, category: TraceCategory) -> bool {
        self.enabled && self.categories[category.index()]
    }

    /// Record an event unconditionally (caller already checked
    /// [`Tracer::wants`]).
    pub fn record(&mut self, now_ns: u64, category: TraceCategory, detail: String) {
        let ev = TraceEvent {
            seq: self.seq,
            now_ns,
            category,
            detail,
        };
        self.seq += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Record an event, building the detail string only if the category is
    /// enabled.
    #[inline]
    pub fn record_with<F: FnOnce() -> String>(
        &mut self,
        now_ns: u64,
        category: TraceCategory,
        detail: F,
    ) {
        if self.wants(category) {
            self.record(now_ns, category, detail());
        }
    }

    /// Total events recorded since construction (including overwritten
    /// ones); `seq() - dump(usize::MAX).len()` events have been lost to
    /// the ring bound.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The last `n` events in chronological order, without disturbing the
    /// ring (drainable while the router keeps running).
    pub fn dump(&self, n: usize) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len().min(n));
        let len = self.ring.len();
        // Chronological order: oldest is at `head` once the ring wrapped.
        let start = if len < self.capacity { 0 } else { self.head };
        let take = len.min(n);
        for k in (len - take)..len {
            out.push(self.ring[(start + k) % len.max(1)].clone());
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(1 << 30), 31);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 1..HIST_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_floor(b)), b);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_floor(b + 1) - 1), b);
        }
    }

    #[test]
    fn histogram_observe_and_mean() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 108);
        assert!((h.mean() - 21.6).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 1); // 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[7], 1); // 100
        assert_eq!(h.trimmed_buckets().len(), 8);
        assert!(Histogram::default().trimmed_buckets().is_empty());
    }

    #[test]
    fn registry_absorb_adds_everything() {
        let mut a = MetricsRegistry::default();
        let mut b = MetricsRegistry::default();
        a.note_gate_call(Gate::Firewall);
        a.note_gate_latency(Gate::Firewall, 100);
        a.note_drop(DropReason::NoRoute);
        a.note_rx(0, 64);
        b.note_gate_call(Gate::Firewall);
        b.note_gate_call(Gate::Scheduling);
        b.note_drop(DropReason::NoRoute);
        b.note_drop(DropReason::Plugin(Gate::Firewall));
        b.note_tx(1, 1500);
        b.class_hits[0] = 7;
        b.fragment_flows = 2;
        b.queue_depth[1] = 3;
        b.mbuf_acquired = 10;
        b.mbuf_recycled = 9;
        b.mbuf_fresh = 1;
        a.absorb(&b);
        assert_eq!(a.gate_calls[Gate::Firewall.index()], 2);
        assert_eq!(a.gate_calls[Gate::Scheduling.index()], 1);
        assert_eq!(a.gate_latency[Gate::Firewall.index()].count, 1);
        assert_eq!(a.drops[drop_reason_index(DropReason::NoRoute)], 2);
        assert_eq!(
            a.drops[drop_reason_index(DropReason::Plugin(Gate::Firewall))],
            1
        );
        assert_eq!(a.dropped_total(), 3);
        assert_eq!(a.if_rx_packets[0], 1);
        assert_eq!(a.if_tx_packets[1], 1);
        assert_eq!(a.if_tx_bytes[1], 1500);
        assert_eq!(a.class_hits[0], 7);
        assert_eq!(a.fragment_flows, 2);
        assert_eq!(a.queue_depth[1], 3);
        assert_eq!(a.pkt_size.count, 1);
        assert_eq!((a.mbuf_acquired, a.mbuf_recycled, a.mbuf_fresh), (10, 9, 1));
    }

    #[test]
    fn drop_reason_slots_are_distinct_and_labelled() {
        let mut seen = std::collections::HashSet::new();
        let mut reasons = vec![
            DropReason::Malformed,
            DropReason::BadChecksum,
            DropReason::TtlExpired,
            DropReason::NoRoute,
            DropReason::QueueFull,
            DropReason::TooBig,
            DropReason::Internal,
            DropReason::ShardOverload,
            DropReason::ShardDown,
            DropReason::DeviceRx,
            DropReason::DeviceTx,
            DropReason::DeadlineExceeded,
        ];
        for g in ALL_GATES {
            reasons.push(DropReason::Plugin(g));
            reasons.push(DropReason::PluginFault(g));
        }
        assert_eq!(reasons.len(), DROP_KINDS);
        for r in reasons {
            let i = drop_reason_index(r);
            assert!(i < DROP_KINDS);
            assert!(seen.insert(i), "slot collision at {i}");
            assert!(!drop_reason_label(i).is_empty());
        }
        assert_eq!(drop_reason_label(7), "shard_overload");
        assert_eq!(drop_reason_label(8), "shard_down");
        assert_eq!(drop_reason_label(9), "device_rx");
        assert_eq!(drop_reason_label(10), "device_tx");
        assert_eq!(drop_reason_label(11), "deadline_exceeded");
        assert_eq!(drop_reason_label(12), "plugin_firewall");
        assert_eq!(
            drop_reason_label(12 + GATE_COUNT + GATE_COUNT - 1),
            "plugin_fault_sched"
        );
    }

    #[test]
    fn histogram_quantile_estimates() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        // 99 values in bucket 7 ([64,128)) and one outlier in bucket 11
        // ([1024,2048)): p50 lands mid-bucket-7, p99 still bucket 7 (rank
        // 99 of 100), p100 reaches the outlier's bucket.
        for _ in 0..99 {
            h.observe(100);
        }
        h.observe(1500);
        assert_eq!(h.quantile(0.50), 64 + 32);
        assert_eq!(h.quantile(0.99), 64 + 32);
        assert_eq!(h.quantile(1.0), 1024 + 512);
        // All zeros: quantiles stay at bucket 0's floor.
        let mut z = Histogram::default();
        z.observe(0);
        z.observe(0);
        assert_eq!(z.quantile(0.99), 0);
    }

    #[test]
    fn gate_call_sampling_cadence() {
        let mut m = MetricsRegistry::default();
        let mut sampled = 0;
        for _ in 0..(LATENCY_SAMPLE * 3) {
            if m.note_gate_call(Gate::Stats) {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 3);
        assert_eq!(m.gate_calls[Gate::Stats.index()], LATENCY_SAMPLE * 3);
    }

    #[test]
    fn tracer_ring_wraps_keeping_newest() {
        let mut t = Tracer::new(4);
        t.set_enabled(true);
        for i in 0..6u64 {
            t.record_with(i * 10, TraceCategory::Flow, || format!("ev{i}"));
        }
        assert_eq!(t.seq(), 6);
        let all = t.dump(usize::MAX);
        assert_eq!(all.len(), 4);
        assert_eq!(
            all.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(all[0].detail, "ev2");
        assert_eq!(all[3].detail, "ev5");
        // dump(n) takes the newest n, still chronological.
        let two = t.dump(2);
        assert_eq!(two.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        // Ring is not disturbed by dumping.
        assert_eq!(t.dump(usize::MAX).len(), 4);
    }

    #[test]
    fn tracer_masking() {
        let mut t = Tracer::new(8);
        // Disabled: nothing recorded, no string built.
        t.record_with(0, TraceCategory::Flow, || {
            unreachable!("must not format while disabled")
        });
        t.set_enabled(true);
        t.set_category(TraceCategory::Shard, false);
        assert!(t.wants(TraceCategory::Flow));
        assert!(!t.wants(TraceCategory::Shard));
        t.record_with(0, TraceCategory::Shard, || {
            unreachable!("must not format a masked category")
        });
        t.record_with(5, TraceCategory::Filter, || "f".to_string());
        assert_eq!(t.dump(10).len(), 1);
        assert_eq!(t.dump(10)[0].category.label(), "filter");
    }

    #[test]
    fn json_rendering_shape() {
        let mut m = MetricsRegistry::default();
        m.note_gate_call(Gate::Firewall);
        m.note_drop(DropReason::NoRoute);
        m.note_rx(0, 64);
        let j = m.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"firewall\":{\"calls\":1"));
        assert!(j.contains("\"no_route\":1"));
        assert!(j.contains("\"rx_packets\":1"));
        assert!(j.contains("\"fragment_flows\":0"));
        assert!(j.contains("\"flow_evicted_lru\":0"));
        assert!(j.contains("\"flow_resize_steps\":0"));
        assert!(j.contains("\"fib_cache_hit\":0"));
        assert!(j.contains("\"fib_cache_miss\":0"));
        assert!(j.contains("\"sojourn_ns\":{\"p50\":0,\"p99\":0,"));
        assert!(j.contains("\"mbuf_pool\":{\"acquired\":0,\"recycled\":0,\"fresh\":0}"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
