//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external dependencies are vendored as minimal
//! API-compatible implementations (see `vendor/README.md`). This one maps
//! `parking_lot::Mutex` / `RwLock` onto the `std::sync` primitives with
//! parking_lot's panic-tolerant, non-poisoning interface: `lock()` returns
//! the guard directly, and a lock held across a panic is recovered rather
//! than poisoned — which is exactly the behaviour the router's plugin
//! supervisor relies on when it catches a panicking plugin.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a panic
    /// while the lock was held does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
