//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so `proptest` is
//! vendored as a small deterministic random-sampling harness (see
//! `vendor/README.md`). It implements the API subset this workspace's
//! property tests use: the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `Strategy`
//! with `prop_map`, tuple/range/`Just`/`any` strategies, `prop_oneof!`,
//! `prop::collection::{vec, btree_set}`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are sampled from a seed derived
//! from the test name (fully reproducible run-to-run), and there is **no
//! shrinking** — a failure reports the sampled inputs as-is via the
//! assertion message. That trade-off keeps the harness tiny while
//! preserving the property coverage of the original tests.

pub use ::rand;

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration.
pub mod test_runner {
    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of `Self::Value`.
    ///
    /// Real proptest separates strategies from value trees to support
    /// shrinking; this stand-in samples values directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Box a strategy for storage in a [`Union`] (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among several strategies with a common value type.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build a union over `arms`; `prop_oneof!` calls this.
        ///
        /// Panics if `arms` is empty (matching real proptest, where an
        /// empty `prop_oneof!` is a compile error).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value uniformly over the domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, u128, bool);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy covering the whole domain of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from a range.
    ///
    /// As in real proptest, duplicate draws collapse, so the resulting
    /// set may be smaller than the drawn target size.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` built from `size` draws of `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            // FNV-1a over the test name: a stable per-test seed.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).bytes() {
                __seed = (__seed ^ u64::from(__b)).wrapping_mul(0x0100_0000_01b3);
            }
            let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property (no shrinking: maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Rect(u8, u8),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (1u8..10).prop_map(Shape::Line),
            (1u8..10, 1u8..10).prop_map(|(w, h)| Shape::Rect(w, h)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples compose.
        fn ranges_and_tuples(x in 3u32..17, y in 0u16..=4, fill in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            let _ = fill;
        }

        fn vec_sizes(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
        }

        fn sets_are_bounded(s in prop::collection::btree_set(1u8..=32, 1..8)) {
            prop_assert!(s.len() < 8);
            prop_assert!(s.iter().all(|&v| (1..=32).contains(&v)));
        }

        fn oneof_covers_arms(shapes in prop::collection::vec(arb_shape(), 1..40)) {
            for s in &shapes {
                match s {
                    Shape::Dot => {}
                    Shape::Line(n) => prop_assert!((1..10).contains(n)),
                    Shape::Rect(w, h) => {
                        prop_assert!((1..10).contains(w));
                        prop_assert!((1..10).contains(h));
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_given_name() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = (0u32..1000, 0u32..1000);
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
