//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so `criterion` is
//! vendored as a minimal timed-loop harness (see `vendor/README.md`). It
//! covers the API subset the `rp-bench` benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up,
//! then timed over an adaptively chosen iteration count, and the mean
//! per-iteration wall time is printed. There are no statistics, plots,
//! or saved baselines — enough to compare kernels by eye, not to
//! publish confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Warm-up window per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters_run: u64,
}

impl Bencher {
    /// Time `routine`, choosing an iteration count that fills the
    /// measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters =
            ((MEASURE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(10, 50_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters_run = iters;
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements (e.g. packets) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A parameterised benchmark name, e.g. `lookup/1024`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

fn report(group: &str, name: &str, mean_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let mut line = format!("{label:<48} {mean_ns:>12.1} ns/iter ({iters} iters)");
    match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let rate = n as f64 * 1e9 / mean_ns;
            line.push_str(&format!("  {rate:>12.0} elem/s"));
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let rate = n as f64 * 1e9 / mean_ns;
            line.push_str(&format!("  {:>12.1} MiB/s", rate / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the units processed per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters_run: 0,
        };
        f(&mut b);
        report(
            &self.name,
            &id.to_string(),
            b.mean_ns,
            b.iters_run,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters_run: 0,
        };
        f(&mut b, input);
        report(
            &self.name,
            &id.to_string(),
            b.mean_ns,
            b.iters_run,
            self.throughput,
        );
        self
    }

    /// End the group (prints nothing extra in this stand-in).
    pub fn finish(&mut self) {}
}

/// Top-level bench driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters_run: 0,
        };
        f(&mut b);
        report("", &id.to_string(), b.mean_ns, b.iters_run, None);
        self
    }
}

/// Collect bench functions under a group name (matches criterion's macro
/// shape; configuration arms are not supported by this stand-in).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("trivial");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 3)
        });
        group.finish();
    }

    criterion_group!(benches, bench_trivial);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lookup", 1024).to_string(), "lookup/1024");
    }
}
