//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so `rand` is
//! vendored as a small deterministic implementation (see
//! `vendor/README.md`). It covers exactly the surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool` and `fill`.
//!
//! The generator is SplitMix64 — statistically solid for test workloads
//! and fully reproducible from a 64-bit seed, which is all the traffic
//! generators and property tests here require. It is **not** a
//! cryptographic RNG (the real `StdRng` is ChaCha-based); nothing in this
//! repository needs cryptographic randomness.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, i8, i16, i32);

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable over a range. The `u128` mapping is
/// bias-shifted for signed types so range arithmetic stays monotone.
pub trait SampleUniform: Copy + PartialOrd {
    /// Map into the ordered `u128` domain.
    fn to_u128(self) -> u128;
    /// Map back from the ordered `u128` domain.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u128
            }
            fn from_u128(v: u128) -> Self {
                ((v as i128).wrapping_add(<$t>::MIN as i128)) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`]. Blanket-implemented over
/// [`SampleUniform`] (as in real `rand`) so type inference can flow from
/// the expected result type into untyped range literals.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range (as the
    /// real `rand` does).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        T::from_u128(lo + u128::from(rng.next_u64()) % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_u128(lo + u128::from(rng.next_u64()) % (hi - lo + 1))
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fill `self` from `rng`.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Fill a buffer with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_with(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u16..=4);
            assert!((1..=4).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_changes_bytes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn distribution_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 700), "{buckets:?}");
    }
}
