//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external dependencies are vendored as minimal
//! API-compatible implementations (see `vendor/README.md`). This one maps
//! `crossbeam_channel::{bounded, unbounded}` onto `std::sync::mpsc`,
//! adding the two things the parallel data plane relies on and `std`
//! lacks:
//!
//! * **Clone-able receivers** (MPMC consumption) — the `Receiver` wraps
//!   the std receiver in an `Arc<Mutex<_>>`, so clones share the queue.
//!   Contention cost is irrelevant here: each router shard owns its
//!   ingress receiver exclusively; cloning is used by collectors.
//! * **Non-poisoning semantics** — a consumer that panics while holding
//!   the receiver lock does not wedge the channel (the plugin supervisor
//!   catches panics on shard threads).
//!
//! Deliberate differences from the real crate: no `select!`, no
//! zero-capacity rendezvous channels (`bounded(0)` is rounded up to 1),
//! and `Sender::send` on a bounded channel blocks exactly like
//! `std::sync::mpsc::SyncSender`.

use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when every [`Receiver`] is gone.
/// Carries the unsent message back to the caller, like the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every [`Sender`] is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Sender::try_send`]. Carries the unsent message
/// back to the caller, like the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is full (receivers still connected).
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// The message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel is currently empty (senders still connected).
    Empty,
    /// Channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

enum Tx<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            Tx::Bounded(s) => Tx::Bounded(s.clone()),
        }
    }
}

/// The sending half of a channel. Clone freely; all clones feed the same
/// queue.
pub struct Sender<T> {
    tx: Tx<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            tx: self.tx.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Fails
    /// only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.tx {
            Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
        }
    }

    /// Send a message without blocking. On a full bounded channel the
    /// message comes straight back as [`TrySendError::Full`]; an
    /// unbounded channel is never full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.tx {
            Tx::Unbounded(s) => s
                .send(value)
                .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
            Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
        }
    }
}

/// The receiving half of a channel. Clones share the same queue (each
/// message is delivered to exactly one receiver).
pub struct Receiver<T> {
    rx: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            rx: Arc::clone(&self.rx),
        }
    }
}

impl<T> Receiver<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
        // Non-poisoning: recover the guard if a previous holder panicked.
        match self.rx.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Block until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.lock().recv().map_err(|_| RecvError)
    }

    /// Fetch a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.lock().try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Block until a message arrives, the timeout elapses, or every
    /// sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.lock().recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Drain the channel into an iterator that ends when the channel is
    /// empty **or** disconnected (the real crate's `try_iter`).
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    /// Blocking iterator: yields until every sender is gone.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator over immediately-available messages (see
/// [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Blocking iterator over a channel (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            tx: Tx::Unbounded(tx),
        },
        Receiver {
            rx: Arc::new(Mutex::new(rx)),
        },
    )
}

/// Create a bounded channel holding at most `cap` messages; senders block
/// while it is full. `bounded(0)` is rounded up to capacity 1 (this
/// stand-in has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap.max(1));
    (
        Sender {
            tx: Tx::Bounded(tx),
        },
        Receiver {
            rx: Arc::new(Mutex::new(rx)),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the main thread drains one
            drop(tx);
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a: Vec<i32> = rx.try_iter().collect();
        let b: Vec<i32> = rx2.try_iter().collect();
        assert_eq!(a.len() + b.len(), 10);
    }

    #[test]
    fn cross_thread_delivery_preserves_order() {
        let (tx, rx) = bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));

        let (utx, urx) = unbounded();
        for i in 0..100 {
            assert_eq!(utx.try_send(i), Ok(()));
        }
        drop(urx);
        assert_eq!(utx.try_send(7), Err(TrySendError::Disconnected(7)));
    }
}
