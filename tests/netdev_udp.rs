//! Real traffic through real sockets: two routers, each under its own
//! I/O plane, chained over `127.0.0.1` UDP — injector → router A →
//! router B → sink, 10 000 packets. The wire is the kernel's UDP stack,
//! so this is the closest in-repo analogue of the paper's two-node ATM
//! testbed: every packet crosses four sockets, and the test demands
//! **zero silent loss** (injected == sink-received, no drops anywhere)
//! plus exact conservation ledgers on both planes and zero fresh mbuf
//! allocations on the receive path once the pools are warm.
//!
//! Both planes run in one process with interleaved polling, so socket
//! buffers never overflow and loss, if any, would be a router bug — not
//! a kernel-buffer artifact.

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netdev::udp::UdpDev;
use router_plugins::netdev::IoPlane;
use router_plugins::netsim::testbench::Testbench;
use router_plugins::netsim::traffic::{v6_host, Workload};
use std::net::UdpSocket;

const PACKETS: usize = 10_000;
const CHUNK: usize = 64;

fn router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(
        &mut r,
        "load drr\n\
         create drr quantum=9180 limit=512\n\
         attach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>\n",
    )
    .unwrap();
    r.add_route(v6_host(0), 32, 1);
    r
}

#[test]
fn ten_thousand_packets_over_loopback_udp_with_zero_silent_loss() {
    // Injector and sink are plain test-owned sockets.
    let inj = UdpSocket::bind("127.0.0.1:0").unwrap();
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    sink.set_nonblocking(true).unwrap();

    // Router A: iface 0 faces the injector, iface 1 faces router B.
    let a0 = UdpDev::connect("a0", "127.0.0.1:0", inj.local_addr().unwrap()).unwrap();
    inj.connect(a0.local_addr().unwrap()).unwrap();
    // Router B's ingress must exist before A's egress can point at it;
    // its own peer is fixed up once A's egress port is known.
    let mut b0 = UdpDev::connect("b0", "127.0.0.1:0", "127.0.0.1:9").unwrap();
    let a1 = UdpDev::connect("a1", "127.0.0.1:0", b0.local_addr().unwrap()).unwrap();
    b0.set_peer(a1.local_addr().unwrap()).unwrap();
    let b1 = UdpDev::connect("b1", "127.0.0.1:0", sink.local_addr().unwrap()).unwrap();

    let mut plane_a = IoPlane::new(router(), CHUNK * 2);
    plane_a.bind(0, Box::new(a0));
    plane_a.bind(1, Box::new(a1));
    let mut plane_b = IoPlane::new(router(), CHUNK * 2);
    plane_b.bind(0, Box::new(b0));
    plane_b.bind(1, Box::new(b1));

    // 10 flows × 1000 packets = 10 000.
    let workload = Workload::uniform(10, PACKETS / 10, 256);
    let tb = Testbench::new(&workload);
    assert_eq!(tb.packets().len(), PACKETS);

    let mut scratch = [0u8; 2048];
    let mut sink_received = 0u64;
    let mut drain_sink = |received: &mut u64| loop {
        match sink.recv(&mut scratch) {
            Ok(_) => *received += 1,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) => panic!("sink recv failed: {e}"),
        }
    };

    // Pool-warmup marker: after the first chunk has flowed end to end,
    // every later packet must ride recycled buffers.
    let mut fresh_a_warm = 0u64;
    let mut fresh_b_warm = 0u64;

    for (ci, chunk) in tb.packets().chunks(CHUNK).enumerate() {
        for pkt in chunk {
            inj.send(pkt.data()).unwrap();
        }
        // Interleave: A pulls the chunk in and pushes to B; B pulls and
        // pushes to the sink. A couple of extra cycles let stragglers
        // (kernel scheduling) drain before the next chunk lands.
        for _ in 0..50 {
            let moved = plane_a.poll() + plane_b.poll();
            drain_sink(&mut sink_received);
            if moved == 0 && plane_a.ledger().device_rx == plane_a.ledger().device_tx {
                break;
            }
        }
        if ci == 0 {
            fresh_a_warm = plane_a.plane().pool_stats().fresh;
            fresh_b_warm = plane_b.plane().pool_stats().fresh;
        }
    }

    // Settle: everything injected must come out the far end.
    for _ in 0..5000 {
        plane_a.poll();
        plane_b.poll();
        drain_sink(&mut sink_received);
        if sink_received as usize == PACKETS {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }

    assert_eq!(
        sink_received as usize,
        PACKETS,
        "silent loss: {sink_received}/{PACKETS} reached the sink \
         (A ledger {:?}, B ledger {:?})",
        plane_a.ledger(),
        plane_b.ledger()
    );

    // Exact conservation on both planes, checked wire-to-wire.
    plane_a.check_conservation();
    plane_b.check_conservation();
    for (name, plane) in [("A", &mut plane_a), ("B", &mut plane_b)] {
        let led = plane.ledger();
        assert_eq!(led.device_rx, PACKETS as u64, "router {name} rx");
        assert_eq!(led.device_tx, PACKETS as u64, "router {name} tx");
        assert_eq!(led.decap_dropped + led.tx_errors, 0, "router {name} drops");
        let stats = plane.plane_mut().stats();
        assert_eq!(stats.dropped_total(), 0, "router {name} dropped packets");
    }

    // Receive path stayed on recycled pool buffers after warm-up.
    assert_eq!(
        plane_a.plane().pool_stats().fresh,
        fresh_a_warm,
        "router A allocated fresh mbuf buffers at steady state"
    );
    assert_eq!(
        plane_b.plane().pool_stats().fresh,
        fresh_b_warm,
        "router B allocated fresh mbuf buffers at steady state"
    );
}
