//! End-to-end data-path tests spanning every crate: the cached/uncached
//! flow paths of paper §3.2, IPsec transforms in the forwarding path,
//! IPv6 option handling, scheduling at egress, and eviction callbacks.

use router_plugins::core::ip_core::Disposition;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::ext_hdr::Ipv6Option;
use router_plugins::packet::ipv6::Ipv6Packet;
use router_plugins::packet::{Mbuf, Protocol};

fn router(script: &str) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(&mut r, script).expect("setup script");
    r
}

#[test]
fn first_packet_misses_then_flow_caches() {
    let mut r = router("load null\ncreate null\nbind stats null 0 <*, *, *, *, *, *>");
    let pkt = || Mbuf::new(PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 64).build(), 0);
    r.receive(pkt());
    let s = r.flow_stats();
    assert_eq!((s.misses, s.hits), (1, 0));
    for _ in 0..9 {
        r.receive(pkt());
    }
    let s = r.flow_stats();
    assert_eq!((s.misses, s.hits), (1, 9));
    // Filter-table work happened only on the miss.
    let fs = r.filter_stats();
    assert!(fs.dag_edges <= 6 * 6, "edges = {}", fs.dag_edges);
}

#[test]
fn ipsec_transform_inside_forwarding_path() {
    // Sign on this router; verify what comes out looks like AH and the
    // hop limit was aged exactly once.
    let mut r =
        router("load ah\ncreate ah mode=sign key=k spi=42\nbind ipsec ah 0 <*, *, UDP, *, *, *>");
    let clear = PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 256).build();
    assert_eq!(
        r.receive(Mbuf::new(clear.clone(), 0)),
        Disposition::Forwarded(1)
    );
    let out = r.take_tx(1).pop().unwrap();
    let pkt = Ipv6Packet::new_checked(out.data()).unwrap();
    assert_eq!(pkt.next_header(), Protocol::Ah);
    assert_eq!(pkt.hop_limit(), 63);
    assert_eq!(out.len(), clear.len() + 24); // AH with HMAC-SHA1-96
}

#[test]
fn ipv6_option_gate_drops_poison_option() {
    let mut r = router("load opt6\ncreate opt6\nbind opts opt6 0 <*, *, *, *, *, *>");
    let good = PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 64)
        .with_hbh_option(Ipv6Option::ROUTER_ALERT, vec![0, 0])
        .build();
    assert_eq!(r.receive(Mbuf::new(good, 0)), Disposition::Forwarded(1));
    // 0x41 = "discard if unrecognised".
    let bad = PacketSpec::udp(v6_host(2), v6_host(9), 5, 6, 64)
        .with_hbh_option(0x41, vec![])
        .build();
    assert!(matches!(
        r.receive(Mbuf::new(bad, 0)),
        Disposition::Dropped(_)
    ));
}

#[test]
fn scheduling_gate_queues_and_pumps() {
    let mut r = router(
        "load drr\ncreate drr quantum=1500 limit=8\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>",
    );
    let pkt = |sport: u16| {
        Mbuf::new(
            PacketSpec::udp(v6_host(1), v6_host(9), sport, 6, 200).build(),
            0,
        )
    };
    for i in 0..6 {
        assert_eq!(r.receive(pkt(100 + i)), Disposition::Queued(1));
    }
    assert_eq!(r.take_tx(1).len(), 0, "nothing on the wire before pump");
    assert_eq!(r.pump(1, 4), 4);
    assert_eq!(r.pump(1, 100), 2);
    assert_eq!(r.take_tx(1).len(), 6);
}

#[test]
fn ttl_and_route_failures() {
    let mut r = router("");
    let mut spec = PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 32);
    spec.ttl = 1;
    assert!(matches!(
        r.receive(Mbuf::new(spec.build(), 0)),
        Disposition::Dropped(_)
    ));
    // Unroutable destination.
    let far: std::net::IpAddr = "fd00::1".parse().unwrap();
    let m = Mbuf::new(PacketSpec::udp(v6_host(1), far, 5, 6, 32).build(), 0);
    assert!(matches!(r.receive(m), Disposition::Dropped(_)));
    // Garbage bytes.
    assert!(matches!(
        r.receive(Mbuf::new(vec![0xAB; 33], 0)),
        Disposition::Dropped(_)
    ));
    let s = r.stats();
    assert_eq!(s.dropped_ttl, 1);
    assert_eq!(s.dropped_no_route, 1);
    assert_eq!(s.dropped_malformed, 1);
}

#[test]
fn flow_eviction_purges_scheduler_state() {
    // Tiny flow cache: churn through many flows with queued packets; the
    // DRR plugin's flow_unbound callback must purge evicted flows'
    // queues so its store does not leak.
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        flow_table: router_plugins::classifier::FlowTableConfig {
            buckets: 64,
            initial_records: 4,
            max_records: 8,
            gates: 6,
            max_idle_ns: 0,
            ..router_plugins::classifier::FlowTableConfig::default()
        },
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(
        &mut r,
        "load drr\ncreate drr quantum=1500 limit=4\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>",
    )
    .unwrap();
    for i in 0..100u16 {
        let m = Mbuf::new(
            PacketSpec::udp(v6_host(i + 1), v6_host(9), 1000 + i, 6, 64).build(),
            0,
        );
        assert_eq!(r.receive(m), Disposition::Queued(1));
    }
    let st = r.flow_stats();
    assert!(st.recycled >= 92, "recycled = {}", st.recycled);
    // Queued packets for evicted flows were purged: backlog is bounded by
    // the live flows (8) × limit (4).
    let report = run_command(&mut r, "msg drr 0 stats").unwrap();
    let backlog: usize = report
        .split("backlog=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(backlog <= 32, "backlog = {backlog} ({report})");
}

#[test]
fn consumed_packets_preserve_bytes_through_scheduler() {
    let mut r = router(
        "load fifo\ncreate fifo limit=16\nattach 1 fifo 0\n\
         bind sched fifo 0 <*, *, *, *, *, *>",
    );
    let original = PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 300).build();
    r.receive(Mbuf::new(original.clone(), 0));
    r.pump(1, 1);
    let out = r.take_tx(1).pop().unwrap();
    // Identical except the aged hop limit (byte 7).
    assert_eq!(out.len(), original.len());
    assert_eq!(&out.data()[..7], &original[..7]);
    assert_eq!(out.data()[7], original[7] - 1);
    assert_eq!(&out.data()[8..], &original[8..]);
}

#[test]
fn ttl_expiry_generates_icmp_time_exceeded() {
    let mut r = router("");
    r.set_interface_addr(0, v6_host(254).to_owned());
    let mut spec = PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 32);
    spec.ttl = 1;
    assert!(matches!(
        r.receive(Mbuf::new(spec.build(), 0)),
        Disposition::Dropped(_)
    ));
    // The ICMP error leaves on the receive interface toward the source.
    let replies = r.take_tx(0);
    assert_eq!(replies.len(), 1);
    let pkt = Ipv6Packet::new_checked(replies[0].data()).unwrap();
    assert_eq!(pkt.next_header(), Protocol::Icmpv6);
    assert_eq!(pkt.dst_addr().segments()[7], 1);
    // Without an interface address, no ICMP is generated.
    let mut r2 = router("");
    let mut spec = PacketSpec::udp(v6_host(1), v6_host(9), 5, 6, 32);
    spec.ttl = 1;
    r2.receive(Mbuf::new(spec.build(), 0));
    assert!(r2.take_tx(0).is_empty());
}

#[test]
fn idle_flows_expire_with_callbacks() {
    let mut r = router("load stats\ncreate stats\nbind stats stats 0 <*, *, UDP, *, *, *>");
    r.set_time_ns(0);
    for i in 0..5u16 {
        let m = Mbuf::new(
            PacketSpec::udp(v6_host(i + 1), v6_host(9), 100 + i, 6, 32).build(),
            0,
        );
        r.receive(m);
    }
    assert_eq!(r.flow_stats().live, 5);
    // Keep flow 0 alive with traffic at t=5s; others idle.
    r.set_time_ns(5_000_000_000);
    let m = Mbuf::new(
        PacketSpec::udp(v6_host(1), v6_host(9), 100, 6, 32).build(),
        0,
    );
    r.receive(m);
    // Expire with a 2 s idle bound at t=6s: flows 1..4 die.
    r.set_time_ns(6_000_000_000);
    let expired = r.expire_idle_flows(2_000_000_000);
    assert_eq!(expired, 4);
    assert_eq!(r.flow_stats().live, 1);
    // The stats plugin saw the evictions (retired flows recorded).
    let report = run_command(&mut r, "msg stats 0 report").unwrap();
    assert!(report.contains("4 retired"), "{report}");
}

#[test]
fn oversized_v4_is_fragmented_at_egress() {
    use router_plugins::packet::ipv4::Ipv4Packet;
    let mut r = Router::new(RouterConfig {
        verify_checksums: true,
        mtu: 600,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route("10.0.0.0".parse().unwrap(), 8, 1);
    let src: std::net::IpAddr = "10.0.0.1".parse().unwrap();
    let dst: std::net::IpAddr = "10.0.0.9".parse().unwrap();
    let original = PacketSpec::udp(src, dst, 4000, 5000, 1400).build();
    // The builder sets DF; clear it and fix the checksum.
    let mut clear_df = original.clone();
    {
        let p = Ipv4Packet::new_unchecked(&mut clear_df[..]);
        let b = p.into_inner();
        b[6] &= !0x40;
        let mut p = Ipv4Packet::new_unchecked(&mut clear_df[..]);
        p.fill_checksum();
    }
    let d = r.receive(Mbuf::new(clear_df, 0));
    assert_eq!(d, Disposition::Forwarded(1));
    let frags = r.take_tx(1);
    assert!(frags.len() >= 3, "got {} fragments", frags.len());
    // Every fragment fits the MTU, checksums, and offsets chain up.
    let mut reassembled = Vec::new();
    let mut expected_offset = 0usize;
    for (i, f) in frags.iter().enumerate() {
        assert!(f.len() <= 600);
        let p = Ipv4Packet::new_checked(f.data()).unwrap();
        assert!(p.verify_checksum());
        assert_eq!(usize::from(p.frag_offset()) * 8, expected_offset);
        assert_eq!(p.more_frags(), i + 1 < frags.len());
        expected_offset += p.payload().len();
        reassembled.extend_from_slice(p.payload());
    }
    // Payload reassembles to the original transport bytes.
    let orig = Ipv4Packet::new_checked(&original[..]).unwrap();
    assert_eq!(reassembled, orig.payload());
    assert_eq!(r.stats().fragmented, 1);

    // DF set: dropped as too big.
    let d = r.receive(Mbuf::new(original, 0));
    assert!(matches!(
        d,
        Disposition::Dropped(router_plugins::core::ip_core::DropReason::TooBig)
    ));
}

#[test]
fn oversized_v6_dropped_not_fragmented() {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        mtu: 600,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    let d = r.receive(Mbuf::new(
        PacketSpec::udp(v6_host(1), v6_host(9), 1, 2, 1400).build(),
        0,
    ));
    assert!(matches!(
        d,
        Disposition::Dropped(router_plugins::core::ip_core::DropReason::TooBig)
    ));
    assert!(r.take_tx(1).is_empty());
}
