//! The I/O plane, end to end over the in-memory backends: loopback
//! round-trips with exact wire-to-wire conservation on both data
//! planes, L2 decap drops counted (never panicking), the pcap
//! reader/writer golden round-trip plus checked-in fixtures in both
//! byte orders, a replay-vs-direct differential, the pmgr `devices`
//! command, and a proptest feeding arbitrary byte soup through the full
//! receive path.

use proptest::prelude::*;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{ParallelRouter, ParallelRouterConfig, Router, RouterConfig};
use router_plugins::netdev::loopback::LoopbackDev;
use router_plugins::netdev::pcap::{
    PcapFile, PcapReplayDev, PcapWriter, LINKTYPE_ETHERNET, LINKTYPE_RAW,
};
use router_plugins::netdev::tap::TapDev;
use router_plugins::netdev::{IoPlane, NetDev, NetDevError};
use router_plugins::netsim::testbench::Testbench;
use router_plugins::netsim::traffic::{v6_host, Workload};
use router_plugins::packet::{FlowTuple, Mbuf};
use std::collections::HashMap;

const SCRIPT: &str = "load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n";

fn single_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, SCRIPT).unwrap();
    r.add_route(v6_host(0), 32, 1);
    r
}

fn parallel_router(shards: usize) -> ParallelRouter {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut par = ParallelRouter::new(
        ParallelRouterConfig {
            shards,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 1024,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut par, SCRIPT).unwrap();
    run_command(&mut par, "route 2001:db8::/32 1").unwrap();
    par
}

/// Reference run: packets straight through a single router (no I/O
/// plane), collecting interface 1's emissions in order.
fn direct_output(packets: &[Mbuf]) -> Vec<Vec<u8>> {
    let mut r = single_router();
    for pkt in packets {
        if let router_plugins::core::ip_core::Disposition::Queued(i) = r.receive(pkt.clone()) {
            r.pump(i, 1);
        }
    }
    r.take_tx(1).iter().map(|m| m.data().to_vec()).collect()
}

/// Group emitted packets by five-tuple (per-flow byte sequences, in
/// emission order).
fn by_flow(frames: &[Vec<u8>]) -> HashMap<FlowTuple, Vec<Vec<u8>>> {
    let mut map: HashMap<FlowTuple, Vec<Vec<u8>>> = HashMap::new();
    for f in frames {
        let mut t = FlowTuple::extract(f, 0).expect("emitted packet parses");
        t.rx_if = 0;
        map.entry(t).or_default().push(f.clone());
    }
    map
}

// ---------------------------------------------------------------------
// Loopback round-trip + conservation + pmgr devices
// ---------------------------------------------------------------------

#[test]
fn loopback_round_trip_conserves_and_reports_devices() {
    let workload = Workload::uniform(8, 25, 256);
    let tb = Testbench::new(&workload);
    let want = direct_output(tb.packets());
    assert_eq!(want.len(), workload.total_packets());

    let (ingress, _peer_in) = LoopbackDev::pair("lo-in", "peer-in", 4096);
    let (egress, _peer_out) = LoopbackDev::pair("lo-out", "peer-out", 4096);
    let in_handle = ingress.handle();
    let out_handle = egress.handle();

    let mut plane = IoPlane::new(single_router(), 64);
    plane.bind(0, Box::new(ingress));
    plane.bind(1, Box::new(egress));

    for pkt in tb.packets() {
        assert!(in_handle.inject(pkt.data()), "ingress wire overflow");
    }
    plane.poll_until_quiet(2, 10_000);

    let mut got = Vec::new();
    while let Some(f) = out_handle.drain_tx() {
        got.push(f);
    }
    assert_eq!(got, want, "loopback output differs from direct run");

    plane.check_conservation();
    let led = plane.ledger();
    assert_eq!(led.device_rx, workload.total_packets() as u64);
    assert_eq!(led.device_tx, workload.total_packets() as u64);
    assert_eq!(led.decap_dropped + led.tx_errors, 0);

    // The pmgr `devices` command sees both devices with live counters.
    let report = run_command(&mut plane, "devices").unwrap();
    assert!(
        report.contains("lo-in if0"),
        "missing ingress row: {report}"
    );
    assert!(
        report.contains("lo-out if1"),
        "missing egress row: {report}"
    );
    assert!(report.contains(&format!("rx={}pkts", workload.total_packets())));
    // And the rest of the command language still works through the
    // delegated control plane.
    let stats = run_command(&mut plane, "stats").unwrap();
    assert!(
        stats.contains("rx=200 fwd=200 dropped=0"),
        "stats broke under IoPlane: {stats}"
    );
}

#[test]
fn parallel_loopback_round_trip_conserves_per_flow() {
    let workload = Workload::uniform(8, 25, 256);
    let tb = Testbench::new(&workload);
    let want = by_flow(&direct_output(tb.packets()));

    let (ingress, _pi) = LoopbackDev::pair("lo-in", "peer-in", 4096);
    let (egress, _po) = LoopbackDev::pair("lo-out", "peer-out", 4096);
    let in_handle = ingress.handle();
    let out_handle = egress.handle();

    let mut plane = IoPlane::new(parallel_router(4), 64);
    plane.bind(0, Box::new(ingress));
    plane.bind(1, Box::new(egress));

    for pkt in tb.packets() {
        assert!(in_handle.inject(pkt.data()));
    }
    plane.poll_until_quiet(3, 10_000);

    let mut got = Vec::new();
    while let Some(f) = out_handle.drain_tx() {
        got.push(f);
    }
    let got = by_flow(&got);
    assert_eq!(got.len(), want.len(), "delivered flow sets differ");
    for (flow, frames) in &want {
        assert_eq!(
            got.get(flow)
                .unwrap_or_else(|| panic!("flow {flow:?} missing")),
            frames,
            "per-flow bytes/order diverged for {flow:?}"
        );
    }
    plane.check_conservation();
}

// ---------------------------------------------------------------------
// Malformed wire input: counted drops, exact conservation, no panic
// ---------------------------------------------------------------------

#[test]
fn framed_garbage_becomes_counted_device_rx_drops() {
    let (ingress, _pi) = LoopbackDev::pair_framed("eth-in", "peer-in", 1024);
    let (egress, _po) = LoopbackDev::pair_framed("eth-out", "peer-out", 1024);
    let in_handle = ingress.handle();

    let mut plane = IoPlane::new(single_router(), 64);
    plane.bind(0, Box::new(ingress));
    plane.bind(1, Box::new(egress));

    // Truncated frame, ARP frame, and a valid Ethernet frame whose IP
    // payload is garbage (devices pass it; the IP core drops Malformed).
    in_handle.inject(&[0xde, 0xad]);
    let mut arp = vec![0u8; 42];
    (arp[12], arp[13]) = (0x08, 0x06);
    in_handle.inject(&arp);
    let mut bad_ip = vec![0u8; 30];
    (bad_ip[12], bad_ip[13]) = (0x08, 0x00);
    bad_ip[14] = 0x4f; // version 4, absurd IHL
    in_handle.inject(&bad_ip);

    plane.poll_until_quiet(2, 100);
    plane.check_conservation();

    let led = plane.ledger();
    assert_eq!(led.device_rx, 3);
    assert_eq!(led.decap_dropped, 2, "truncated + ARP dropped at decap");
    let stats = plane.plane_mut().stats();
    assert_eq!(stats.dropped_device_rx, 2);
    assert_eq!(stats.dropped_malformed, 1, "bad IP reaches the IP core");

    // Drop slots surface through the metrics registry by name.
    let metrics = run_command(&mut plane, "metrics").unwrap();
    assert!(
        metrics.contains("device_rx"),
        "device_rx drop slot missing from metrics: {metrics}"
    );
}

// ---------------------------------------------------------------------
// pcap: golden round-trip, fixtures, replay differential
// ---------------------------------------------------------------------

#[test]
fn pcap_write_reparse_rewrite_is_byte_identical() {
    let workload = Workload::uniform(5, 10, 200);
    let tb = Testbench::new(&workload);
    for (linktype, big) in [
        (LINKTYPE_RAW, false),
        (LINKTYPE_RAW, true),
        (LINKTYPE_ETHERNET, false),
        (LINKTYPE_ETHERNET, true),
    ] {
        let bytes = tb.record_pcap(linktype, big);
        let parsed = PcapFile::parse(&bytes).unwrap();
        assert_eq!(parsed.linktype, linktype);
        assert_eq!(parsed.big_endian, big);
        assert_eq!(parsed.records.len(), workload.total_packets());
        // Re-serialize from the parsed form: must reproduce the file
        // byte for byte.
        let mut w = PcapWriter::new(parsed.linktype, parsed.big_endian);
        for r in &parsed.records {
            w.push(r.ts_sec, r.ts_usec, &r.data);
        }
        assert_eq!(
            w.into_bytes(),
            bytes,
            "pcap round-trip not byte-identical (linktype {linktype}, big_endian {big})"
        );
    }
}

/// The records both endianness fixtures must decode to.
fn fixture_records() -> Vec<(u32, u32, Vec<u8>)> {
    vec![
        (0, 1, vec![0x45, 0x00, 0x00, 0x04, 0xaa, 0xbb]),
        (1, 500_000, vec![0x60; 40]),
        (2, 999_999, vec![0x45; 20]),
    ]
}

#[test]
fn endianness_fixtures_parse_identically() {
    let le = include_bytes!("fixtures/replay_le.pcap");
    let be = include_bytes!("fixtures/replay_be.pcap");
    let fle = PcapFile::parse(le).unwrap();
    let fbe = PcapFile::parse(be).unwrap();
    assert!(!fle.big_endian);
    assert!(fbe.big_endian);
    assert_eq!(fle.linktype, LINKTYPE_RAW);
    assert_eq!(fbe.linktype, LINKTYPE_RAW);
    for f in [&fle, &fbe] {
        let got: Vec<(u32, u32, Vec<u8>)> = f
            .records
            .iter()
            .map(|r| (r.ts_sec, r.ts_usec, r.data.clone()))
            .collect();
        assert_eq!(got, fixture_records(), "fixture decoded wrong");
    }
}

/// Regenerates the checked-in fixtures. Run manually after a format
/// change: `cargo test --test netdev -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate_endianness_fixtures() {
    for (name, big) in [("replay_le.pcap", false), ("replay_be.pcap", true)] {
        let mut w = PcapWriter::new(LINKTYPE_RAW, big);
        for (s, us, data) in fixture_records() {
            w.push(s, us, &data);
        }
        let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, w.into_bytes()).unwrap();
    }
}

#[test]
fn pcap_replay_matches_direct_run_on_both_planes() {
    let workload = Workload::uniform(6, 20, 300);
    let tb = Testbench::new(&workload);
    let trace = tb.record_pcap(LINKTYPE_ETHERNET, false);
    let direct = direct_output(tb.packets());

    // Single router: whole-interface emission order must be identical.
    let (egress, _po) = LoopbackDev::pair("lo-out", "peer", 8192);
    let out_handle = egress.handle();
    let mut plane = IoPlane::new(single_router(), 128);
    plane.bind(
        0,
        Box::new(PcapReplayDev::new("pcap:replay", &trace).unwrap()),
    );
    plane.bind(1, Box::new(egress));
    plane.poll_until_quiet(2, 10_000);
    let mut got = Vec::new();
    while let Some(f) = out_handle.drain_tx() {
        got.push(f);
    }
    assert_eq!(got, direct, "pcap replay output differs from direct run");
    plane.check_conservation();

    // Parallel plane: byte-identical per flow.
    let want = by_flow(&direct);
    let (egress, _po) = LoopbackDev::pair("lo-out", "peer", 8192);
    let out_handle = egress.handle();
    let mut plane = IoPlane::new(parallel_router(4), 128);
    plane.bind(
        0,
        Box::new(PcapReplayDev::new("pcap:replay", &trace).unwrap()),
    );
    plane.bind(1, Box::new(egress));
    plane.poll_until_quiet(3, 10_000);
    let mut got = Vec::new();
    while let Some(f) = out_handle.drain_tx() {
        got.push(f);
    }
    let got = by_flow(&got);
    assert_eq!(got.len(), want.len());
    for (flow, frames) in &want {
        assert_eq!(got.get(flow).expect("flow missing"), frames);
    }
    plane.check_conservation();
}

// ---------------------------------------------------------------------
// TAP: graceful skip without /dev/net/tun or CAP_NET_ADMIN
// ---------------------------------------------------------------------

#[test]
fn tap_unavailable_skips_gracefully() {
    match TapDev::open("rptap-test0") {
        Err(NetDevError::Unavailable(why)) => {
            eprintln!("skipping TAP test: {why}");
        }
        Err(e) => panic!("TAP open failed non-gracefully: {e}"),
        Ok(mut dev) => {
            // Device exists (privileged environment): a poll on the
            // fresh interface must not block or error.
            let r = dev.rx_batch(16, &mut |_p| {});
            assert_eq!(r.frames, r.delivered + r.dropped);
            assert_eq!(dev.stats().rx_errors, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Property: arbitrary wire bytes never panic, conservation stays exact
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_wire_bytes_never_panic_and_conserve(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 1..40),
        framed in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let (ingress, _pi) = if framed {
            LoopbackDev::pair_framed("in", "pi", 1024)
        } else {
            LoopbackDev::pair("in", "pi", 1024)
        };
        let (egress, _po) = LoopbackDev::pair("out", "po", 1024);
        let in_handle = ingress.handle();

        let offered = frames.len() as u64;
        if parallel {
            let mut plane = IoPlane::new(parallel_router(2), 32);
            plane.bind(0, Box::new(ingress));
            plane.bind(1, Box::new(egress));
            for f in &frames {
                prop_assert!(in_handle.inject(f));
            }
            plane.poll_until_quiet(3, 1000);
            plane.check_conservation();
            prop_assert_eq!(plane.ledger().device_rx, offered);
        } else {
            let mut plane = IoPlane::new(single_router(), 32);
            plane.bind(0, Box::new(ingress));
            plane.bind(1, Box::new(egress));
            for f in &frames {
                prop_assert!(in_handle.inject(f));
            }
            plane.poll_until_quiet(2, 1000);
            plane.check_conservation();
            prop_assert_eq!(plane.ledger().device_rx, offered);
        }
    }
}
