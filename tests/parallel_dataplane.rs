//! The sharded parallel data plane must be observationally equivalent to
//! the paper-faithful single-threaded router: same per-flow deliveries in
//! the same per-flow order, same drop-reason totals, and one control
//! plane whose commands mean the same thing on both. These tests drive
//! both data planes through identical pmgr scripts and flow-structured
//! workloads and compare everything an outside observer can see.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use router_plugins::classifier::flow_table::flow_hash;
use router_plugins::core::dataplane::{shard_for_tuple, ShardReport};
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{
    ControlPlane, DispatchMode, ParallelRouter, ParallelRouterConfig, Router, RouterConfig,
};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::{FlowTuple, Mbuf};
use std::collections::HashMap;
use std::net::IpAddr;

// ---------------------------------------------------------------------
// Shard balance: the dispatch hash must spread random five-tuples evenly
// ---------------------------------------------------------------------

fn random_tuple(rng: &mut StdRng) -> FlowTuple {
    let v6: bool = rng.gen_bool(0.5);
    let (src, dst) = if v6 {
        (
            IpAddr::V6(std::net::Ipv6Addr::from(rng.gen::<u128>())),
            IpAddr::V6(std::net::Ipv6Addr::from(rng.gen::<u128>())),
        )
    } else {
        (
            IpAddr::V4(std::net::Ipv4Addr::from(rng.gen::<u32>())),
            IpAddr::V4(std::net::Ipv4Addr::from(rng.gen::<u32>())),
        )
    };
    FlowTuple {
        src,
        dst,
        proto: if rng.gen_bool(0.5) { 6 } else { 17 },
        sport: rng.gen(),
        dport: rng.gen_range(1..1024),
        rx_if: 0,
    }
}

#[test]
fn dispatch_spreads_random_flows_within_15_percent_of_mean() {
    const TUPLES: usize = 20_000;
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let tuples: Vec<FlowTuple> = (0..TUPLES).map(|_| random_tuple(&mut rng)).collect();
    for shards in [2usize, 4, 8] {
        let mut load = vec![0u64; shards];
        for t in &tuples {
            load[shard_for_tuple(t, shards)] += 1;
        }
        let mean = TUPLES as f64 / shards as f64;
        let max = *load.iter().max().unwrap() as f64;
        let min = *load.iter().min().unwrap() as f64;
        assert!(
            max <= mean * 1.15,
            "{shards} shards: max load {max} above 115% of mean {mean} ({load:?})"
        );
        assert!(
            min >= mean * 0.85,
            "{shards} shards: min load {min} below 85% of mean {mean} ({load:?})"
        );
    }
}

#[test]
fn dispatch_is_flow_affine_and_matches_cache_hash() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let t = random_tuple(&mut rng);
        for shards in [1usize, 2, 4, 8] {
            let s = shard_for_tuple(&t, shards);
            // Multiply-shift range reduction over the same cache hash.
            assert_eq!(s, ((flow_hash(&t) as u64 * shards as u64) >> 32) as usize);
            assert_eq!(s, shard_for_tuple(&t, shards));
        }
    }
}

// ---------------------------------------------------------------------
// Differential: single-threaded Router vs ParallelRouter
// ---------------------------------------------------------------------

/// Flows exercising distinct fates: routed+scheduled UDP, firewall-denied
/// (dport 9999), and unrouted destinations (outside 2001:db8::/32).
struct DiffFlow {
    src: IpAddr,
    dst: IpAddr,
    sport: u16,
    dport: u16,
    count: usize,
}

fn diff_flows() -> Vec<DiffFlow> {
    let mut flows = Vec::new();
    for i in 0..24u16 {
        flows.push(DiffFlow {
            src: v6_host(10 + i),
            dst: v6_host(200 + (i % 5)),
            sport: 4000 + i,
            dport: 80,
            count: 20 + (i as usize % 7),
        });
    }
    // Firewall-denied flows.
    for i in 0..4u16 {
        flows.push(DiffFlow {
            src: v6_host(50 + i),
            dst: v6_host(210),
            sport: 4100 + i,
            dport: 9999,
            count: 10,
        });
    }
    // No-route flows (fc00::/7 ULA space, not covered by the route).
    for i in 0..4u16 {
        flows.push(DiffFlow {
            src: v6_host(60 + i),
            dst: IpAddr::V6(std::net::Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, i)),
            sport: 4200 + i,
            dport: 80,
            count: 8,
        });
    }
    flows
}

/// Interleaved packet sequence with a per-flow sequence number stamped in
/// the last 4 payload bytes (checksum verification is off in this rig).
fn diff_packets() -> Vec<Mbuf> {
    let flows = diff_flows();
    let mut seqs = vec![0u32; flows.len()];
    let mut out = Vec::new();
    let mut round = 0usize;
    loop {
        let mut emitted = false;
        for (fi, f) in flows.iter().enumerate() {
            if round < f.count {
                let mut m = Mbuf::new(
                    PacketSpec::udp(f.src, f.dst, f.sport, f.dport, 128).build(),
                    0,
                );
                let seq = seqs[fi];
                seqs[fi] += 1;
                let data = m.data_mut();
                let n = data.len();
                data[n - 4..].copy_from_slice(&seq.to_be_bytes());
                out.push(m);
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
        round += 1;
    }
    out
}

const DIFF_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load firewall\n\
     create firewall action=deny\n\
     bind fw firewall 0 <*, *, UDP, *, 9999, *>\n\
     load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n\
     route 2001:db8::/32 1\n";

/// Per-flow delivered sequence numbers, grouped by the emitted packet's
/// five-tuple, in emission order.
fn deliveries(tx: &[Mbuf]) -> HashMap<FlowTuple, Vec<u32>> {
    let mut map: HashMap<FlowTuple, Vec<u32>> = HashMap::new();
    for m in tx {
        let mut t = FlowTuple::from_mbuf(m).expect("emitted packet parses");
        // Normalize receive context: arrival interface is not part of the
        // flow identity on the wire.
        t.rx_if = 0;
        let d = m.data();
        let seq = u32::from_be_bytes(d[d.len() - 4..].try_into().unwrap());
        map.entry(t).or_default().push(seq);
    }
    map
}

fn parallel_matches_single_router(dispatch: DispatchMode) {
    let packets = diff_packets();

    // Single-threaded reference.
    let mut single = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut single.loader);
    run_script(&mut single, DIFF_SCRIPT).unwrap();
    let mut single_tx = Vec::new();
    for pkt in &packets {
        let d = single.receive(pkt.clone());
        if let router_plugins::core::ip_core::Disposition::Queued(i) = d {
            single.pump(i, 1);
        }
    }
    for i in 0..single.interface_count() {
        single_tx.extend(single.take_tx(i as u32));
    }

    // Parallel data plane, 4 shards, identical script.
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut par = ParallelRouter::new(
        ParallelRouterConfig {
            shards: 4,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 256,
            dispatch,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut par, DIFF_SCRIPT).unwrap();
    for pkt in &packets {
        par.receive(pkt.clone());
    }
    par.flush();
    let mut par_tx = Vec::new();
    for i in 0..par.interface_count() {
        par_tx.extend(par.take_tx(i as u32));
    }

    // Identical per-flow delivery counts AND per-flow packet order.
    let single_flows = deliveries(&single_tx);
    let par_flows = deliveries(&par_tx);
    assert_eq!(
        single_flows.len(),
        par_flows.len(),
        "delivered flow sets differ"
    );
    for (flow, seqs) in &single_flows {
        let p = par_flows
            .get(flow)
            .unwrap_or_else(|| panic!("flow {flow:?} missing from parallel delivery"));
        assert_eq!(seqs, p, "per-flow order diverged for {flow:?}");
    }
    assert_eq!(
        single_tx.len(),
        par_tx.len(),
        "total delivery count differs"
    );

    // Identical drop-reason totals.
    let s = single.stats();
    let p = par.stats();
    assert_eq!(s.received, p.received);
    assert_eq!(s.forwarded, p.forwarded);
    assert_eq!(s.dropped_plugin, p.dropped_plugin, "firewall drops differ");
    assert_eq!(
        s.dropped_no_route, p.dropped_no_route,
        "no-route drops differ"
    );
    assert_eq!(s.dropped_malformed, p.dropped_malformed);
    assert_eq!(s.dropped_ttl, p.dropped_ttl);
    assert_eq!(s.dropped_queue, p.dropped_queue);
    assert_eq!(s.dropped_total(), p.dropped_total(), "drop totals differ");

    // The flow cache saw every flow exactly once per owning router.
    assert_eq!(single.flow_stats().misses, par.flow_stats().misses);
    assert_eq!(single.flow_stats().hits, par.flow_stats().hits);
}

#[test]
fn parallel_over_rings_matches_single_router_deliveries_order_and_drops() {
    parallel_matches_single_router(DispatchMode::Ring);
}

#[test]
fn parallel_over_channels_matches_single_router_deliveries_order_and_drops() {
    parallel_matches_single_router(DispatchMode::Channel);
}

// ---------------------------------------------------------------------
// Single control plane over many shards
// ---------------------------------------------------------------------

fn parallel(shards: usize) -> ParallelRouter {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    ParallelRouter::new(
        ParallelRouterConfig {
            shards,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 64,
            ..ParallelRouterConfig::default()
        },
        &template,
    )
}

#[test]
fn control_fanout_keeps_instance_ids_in_lockstep() {
    let mut pr = parallel(4);
    let out = run_script(
        &mut pr,
        "load stats\ncreate stats\ncreate stats\nbind stats stats 1 <*, *, UDP, *, 53, *>",
    )
    .unwrap();
    // Aggregated replies collapse to the single-router answer: one id,
    // not four.
    assert_eq!(out[1], "stats instance 0");
    assert_eq!(out[2], "stats instance 1");
    assert!(out[3].starts_with("filter "), "{out:?}");

    // The logical view is identical to what any one shard reports.
    let instances = pr.cp_describe_instances();
    assert_eq!(instances.len(), 2, "{instances:?}");
    let filters = run_command(&mut pr, "show filters stats").unwrap();
    assert!(filters.contains("53"), "{filters}");
}

#[test]
fn pmgr_stats_reports_per_shard_breakdown() {
    let mut pr = parallel(2);
    run_script(&mut pr, "route 2001:db8::/32 1").unwrap();
    for i in 0..40u16 {
        pr.receive(Mbuf::new(
            PacketSpec::udp(v6_host(i), v6_host(300), 2000 + i, 80, 64).build(),
            0,
        ));
    }
    pr.flush();
    let out = run_command(&mut pr, "stats").unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "total + 2 shard rows: {out}");
    assert!(lines[0].starts_with("total: rx=40"), "{out}");
    assert!(lines[1].starts_with("shard 0: rx="), "{out}");
    assert!(lines[2].starts_with("shard 1: rx="), "{out}");
    // Shard rows sum to the total row.
    let rx_of = |line: &str| -> u64 {
        line.split("rx=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(rx_of(lines[1]) + rx_of(lines[2]), 40);
}

#[test]
fn force_unload_fans_out_and_frees_all_shards() {
    let mut pr = parallel(3);
    run_script(
        &mut pr,
        "load firewall\ncreate firewall action=deny\n\
         bind fw firewall 0 <*, *, UDP, *, 7, *>",
    )
    .unwrap();
    assert_eq!(pr.cp_describe_instances().len(), 1);
    let out = run_command(&mut pr, "unload firewall force").unwrap();
    assert_eq!(out, "force-unloaded firewall");
    assert!(pr.cp_describe_instances().is_empty());
    assert!(pr.cp_loaded_plugins().is_empty());
    // Reload works afterwards on every shard.
    run_script(&mut pr, "load firewall\ncreate firewall action=deny").unwrap();
    assert_eq!(pr.cp_describe_instances().len(), 1);
}

#[test]
fn divergent_per_shard_text_replies_are_labelled() {
    let mut pr = parallel(2);
    run_script(
        &mut pr,
        "load stats\ncreate stats\n\
         bind stats stats 0 <*, *, UDP, *, *, *>\n\
         route 2001:db8::/32 1",
    )
    .unwrap();
    // One packet of a single flow lands on exactly one shard, so the two
    // shards' per-instance counters diverge.
    pr.receive(Mbuf::new(
        PacketSpec::udp(v6_host(1), v6_host(300), 1234, 80, 64).build(),
        0,
    ));
    pr.flush();
    let out = run_command(&mut pr, "msg stats 0 report").unwrap();
    assert!(out.contains("[shard 0]"), "{out}");
    assert!(out.contains("[shard 1]"), "{out}");
}

#[test]
fn shard_reports_cover_all_shards_and_account_packets() {
    let mut pr = parallel(4);
    run_script(&mut pr, "route 2001:db8::/32 1").unwrap();
    for i in 0..100u16 {
        pr.receive(Mbuf::new(
            PacketSpec::udp(v6_host(i), v6_host(301), 1000 + i, 80, 64).build(),
            0,
        ));
    }
    pr.flush();
    let reports: Vec<ShardReport> = pr.shard_reports();
    assert_eq!(reports.len(), 4);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.shard, i);
    }
    assert_eq!(reports.iter().map(|r| r.packets).sum::<u64>(), 100);
    assert_eq!(pr.stats().received, 100);
    assert_eq!(pr.stats().forwarded, 100);
}
