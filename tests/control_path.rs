//! E9 — control-path lifecycle across the whole stack: modload → create
//! instance → create filter → bind → traffic → deregister → free →
//! modunload, exercised through the pmgr command language exactly as the
//! paper's §3.1 configuration sequence describes.

use router_plugins::core::ip_core::Disposition;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script, PmgrError};
use router_plugins::core::{Gate, Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    r
}

fn udp_packet(sport: u16) -> Mbuf {
    Mbuf::new(
        PacketSpec::udp(v6_host(1), v6_host(100), sport, 9000, 128).build(),
        0,
    )
}

#[test]
fn full_configuration_lifecycle() {
    let mut r = router();

    // §3.1 step 1: loading a plugin.
    run_command(&mut r, "load stats").unwrap();
    assert_eq!(r.loader.loaded(), vec!["stats"]);

    // Step 2: creating an instance.
    let out = run_command(&mut r, "create stats").unwrap();
    assert_eq!(out, "stats instance 0");

    // Steps 3+4: creating a filter and binding it to the instance.
    let out = run_command(&mut r, "bind stats stats 0 <*, *, UDP, *, *, *>").unwrap();
    let fid: u64 = out.strip_prefix("filter ").unwrap().parse().unwrap();

    // Data flows through the bound instance.
    assert_eq!(r.receive(udp_packet(1000)), Disposition::Forwarded(1));
    assert_eq!(r.receive(udp_packet(1000)), Disposition::Forwarded(1));
    let report = run_command(&mut r, "msg stats 0 report").unwrap();
    assert!(report.contains("2 pkts"), "{report}");

    // Deregister: flows derived from the filter are invalidated.
    run_command(&mut r, &format!("unbind stats stats {fid}")).unwrap();
    assert_eq!(r.receive(udp_packet(1000)), Disposition::Forwarded(1));
    let report = run_command(&mut r, "msg stats 0 report").unwrap();
    assert!(
        report.contains("2 pkts"),
        "unbound instance must stop counting: {report}"
    );

    // Free + unload.
    run_command(&mut r, "free stats 0").unwrap();
    run_command(&mut r, "unload stats").unwrap();
    assert!(r.loader.loaded().is_empty());
}

#[test]
fn free_instance_purges_bindings() {
    let mut r = router();
    run_script(
        &mut r,
        "load firewall\ncreate firewall action=deny\nbind fw firewall 0 <*, *, UDP, *, *, *>",
    )
    .unwrap();
    assert!(matches!(r.receive(udp_packet(1)), Disposition::Dropped(_)));
    // Free while the filter is still installed: the Router must purge the
    // binding first (the paper: "all references to it are removed from
    // the flow table and the filter table").
    run_command(&mut r, "free firewall 0").unwrap();
    assert_eq!(r.receive(udp_packet(1)), Disposition::Forwarded(1));
    // And the plugin can now be unloaded.
    run_command(&mut r, "unload firewall").unwrap();
}

#[test]
fn unload_refused_while_instances_live() {
    let mut r = router();
    run_script(&mut r, "load null\ncreate null").unwrap();
    let err = run_command(&mut r, "unload null").unwrap_err();
    assert!(matches!(err, PmgrError::Plugin(_)));
    run_command(&mut r, "free null 0").unwrap();
    run_command(&mut r, "unload null").unwrap();
}

#[test]
fn force_unload_mid_flow_flushes_bindings() {
    let mut r = router();
    run_script(
        &mut r,
        "load stats\ncreate stats\nbind stats stats 0 <*, *, UDP, *, *, *>",
    )
    .unwrap();
    // Traffic caches a live flow bound to the instance.
    assert_eq!(r.receive(udp_packet(1000)), Disposition::Forwarded(1));
    assert_eq!(r.receive(udp_packet(1000)), Disposition::Forwarded(1));
    // Plain unload keeps the refusal semantics while instances live…
    assert!(run_command(&mut r, "unload stats").is_err());
    // …and a bogus modifier is a syntax error, not a force.
    assert!(matches!(
        run_command(&mut r, "unload stats now"),
        Err(PmgrError::Syntax(_))
    ));
    // `force` frees the instance — deregistering its filter and flushing
    // the cached mid-stream flow — then unloads the module.
    let out = run_command(&mut r, "unload stats force").unwrap();
    assert_eq!(out, "force-unloaded stats");
    assert!(r.loader.loaded().is_empty());
    // The flow keeps flowing on the default path; no stale binding left.
    assert_eq!(r.receive(udp_packet(1000)), Disposition::Forwarded(1));
    assert_eq!(r.receive(udp_packet(1001)), Disposition::Forwarded(1));
}

#[test]
fn force_unload_scheduler_drains_queue_to_wire() {
    let mut r = router();
    run_script(
        &mut r,
        "load drr\ncreate drr quantum=1500\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>",
    )
    .unwrap();
    assert!(matches!(r.receive(udp_packet(1)), Disposition::Queued(1)));
    assert!(matches!(r.receive(udp_packet(2)), Disposition::Queued(1)));
    run_command(&mut r, "unload drr force").unwrap();
    // The queued packets were pushed to the wire, not blackholed.
    assert_eq!(r.take_tx(1).len(), 2);
    assert_eq!(r.receive(udp_packet(3)), Disposition::Forwarded(1));
}

#[test]
fn pmgr_health_and_faults_commands() {
    let mut r = router();
    assert_eq!(
        run_command(&mut r, "health").unwrap(),
        "no supervised instances"
    );
    run_script(&mut r, "load null\ncreate null").unwrap();
    let h = run_command(&mut r, "health").unwrap();
    assert!(h.contains("null 0: healthy faults=0/0 restarts=0"), "{h}");
    let f = run_command(&mut r, "faults").unwrap();
    assert!(f.contains("faults=0"), "{f}");
    assert!(f.contains("quarantines=0"), "{f}");
    run_command(&mut r, "free null 0").unwrap();
    assert_eq!(
        run_command(&mut r, "health").unwrap(),
        "no supervised instances"
    );
}

#[test]
fn multiple_instances_coexist_per_flow() {
    // "One of the novel features of our design is the ability to bind
    // different plugins to individual flows; this allows distinct plugin
    // implementations to seamlessly coexist."
    let mut r = router();
    run_script(
        &mut r,
        "load firewall\n\
         create firewall action=deny\n\
         create firewall action=allow\n\
         bind fw firewall 0 <2001:db8::/64, *, UDP, *, *, *>\n\
         bind fw firewall 1 <2001:db8::1, *, UDP, *, *, *>\n",
    )
    .unwrap();
    // Host ::1 matches the more specific allow instance.
    assert_eq!(r.receive(udp_packet(7)), Disposition::Forwarded(1));
    // Another host in the /64 hits the deny instance.
    let other = Mbuf::new(
        PacketSpec::udp(v6_host(2), v6_host(100), 7, 9000, 64).build(),
        0,
    );
    assert!(matches!(r.receive(other), Disposition::Dropped(_)));
}

#[test]
fn same_instance_multiple_filters() {
    // "The same instance may be registered multiple times with the AIU
    // with different filter specifications."
    let mut r = router();
    run_script(
        &mut r,
        "load stats\ncreate stats\n\
         bind stats stats 0 <*, *, UDP, *, 1000, *>\n\
         bind stats stats 0 <*, *, UDP, *, 2000, *>\n",
    )
    .unwrap();
    let mk = |dport: u16| {
        Mbuf::new(
            PacketSpec::udp(v6_host(1), v6_host(100), 5, dport, 64).build(),
            0,
        )
    };
    r.receive(mk(1000));
    r.receive(mk(2000));
    r.receive(mk(3000)); // matches no filter
    let report = run_command(&mut r, "msg stats 0 report").unwrap();
    assert!(report.contains("2 pkts"), "{report}");
}

#[test]
fn gates_toggle_at_runtime() {
    let mut r = router();
    run_script(
        &mut r,
        "load firewall\ncreate firewall action=deny\nbind fw firewall 0 <*, *, *, *, *, *>",
    )
    .unwrap();
    assert!(matches!(r.receive(udp_packet(1)), Disposition::Dropped(_)));
    r.set_gate_enabled(Gate::Firewall, false);
    assert_eq!(r.receive(udp_packet(2)), Disposition::Forwarded(1));
    r.set_gate_enabled(Gate::Firewall, true);
    assert!(matches!(r.receive(udp_packet(3)), Disposition::Dropped(_)));
}

#[test]
fn reload_after_unload_gets_fresh_state() {
    let mut r = router();
    run_script(
        &mut r,
        "load stats\ncreate stats\nbind stats stats 0 <*, *, *, *, *, *>",
    )
    .unwrap();
    r.receive(udp_packet(1));
    run_script(
        &mut r,
        "free stats 0\nunload stats\nload stats\ncreate stats",
    )
    .unwrap();
    let report = run_command(&mut r, "msg stats 0 report").unwrap();
    assert!(
        report.contains("0 pkts"),
        "fresh module must start clean: {report}"
    );
}

#[test]
fn new_filter_applies_to_already_cached_flows() {
    // Paper §6.1: "these commands can be executed at any time, even when
    // network traffic is transiting through the system." A more specific
    // filter installed mid-flow must take effect on the very next packet
    // of an already-cached flow.
    let mut r = router();
    run_script(
        &mut r,
        "load firewall\ncreate firewall action=allow\n\
         bind fw firewall 0 <*, *, UDP, *, *, *>",
    )
    .unwrap();
    // Cache the flow under the allow-all filter.
    assert_eq!(r.receive(udp_packet(777)), Disposition::Forwarded(1));
    assert_eq!(r.receive(udp_packet(777)), Disposition::Forwarded(1));
    assert_eq!(r.flow_stats().hits, 1);
    // Now deny that specific source port, while traffic is "in flight".
    run_script(
        &mut r,
        "create firewall action=deny\n\
         bind fw firewall 1 <*, *, UDP, 777, *, *>",
    )
    .unwrap();
    // The cached flow was invalidated and reclassifies to the deny rule.
    assert!(matches!(
        r.receive(udp_packet(777)),
        Disposition::Dropped(_)
    ));
    // Unrelated flows are unaffected.
    assert_eq!(r.receive(udp_packet(778)), Disposition::Forwarded(1));
}
