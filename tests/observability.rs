//! End-to-end observability: the metrics registry and event tracer as
//! seen through the pmgr surface, on both data planes, plus the fragment
//! classification fix — every fragment of a datagram must hit the same
//! flow record (and therefore the same shard), because only the first
//! fragment carries the transport header.

use router_plugins::core::ip_core::fragment_v4;
use router_plugins::core::loader::PluginLoader;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_command;
use router_plugins::core::{
    ControlPlane, ParallelRouter, ParallelRouterConfig, Router, RouterConfig,
};
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::ipv4::Ipv4Packet;
use router_plugins::packet::Mbuf;
use std::net::{IpAddr, Ipv4Addr};

fn v4(n: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, n))
}

/// A 2000-byte UDP datagram split into on-wire fragments (≥ 3 of them);
/// only the first carries the UDP header.
fn fragmented_udp() -> Vec<Vec<u8>> {
    let mut buf = PacketSpec::udp(v4(1), v4(2), 5555, 7777, 2000).build();
    {
        let p = Ipv4Packet::new_unchecked(&mut buf[..]);
        let b = p.into_inner();
        b[6] &= !0x40; // clear DF so the datagram can fragment
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.fill_checksum();
    }
    let frags = fragment_v4(&buf, 600).expect("fragmentable");
    assert!(frags.len() >= 3, "want ≥3 fragments, got {}", frags.len());
    frags
}

fn single_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v4(2), 32, 1);
    r
}

fn parallel_router(shards: usize) -> ParallelRouter {
    let mut template = PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 256,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    pr.cp_add_route(v4(2), 32, 1);
    pr
}

// ---------------------------------------------------------------------
// Fragment classification: one datagram → one flow record → one shard
// ---------------------------------------------------------------------

#[test]
fn fragments_share_one_flow_record() {
    let mut r = single_router();
    let frags = fragmented_udp();
    let n = frags.len() as u64;
    for f in frags {
        r.receive(Mbuf::new(f, 0));
    }
    let fs = r.flow_stats();
    assert_eq!(
        fs.misses, 1,
        "every fragment must key to the same flow record"
    );
    assert_eq!(fs.hits, n - 1, "later fragments must hit the cached record");
    let m = r.metrics_snapshot();
    assert_eq!(
        m.fragment_flows, 1,
        "the flow must be counted as fragmented"
    );
    assert_eq!(m.if_rx_packets[0], n);
}

#[test]
fn fragments_land_on_one_shard() {
    let mut pr = parallel_router(4);
    for f in fragmented_udp() {
        pr.receive(Mbuf::new(f, 0));
    }
    pr.flush();
    let rows = pr.cp_stats_rows();
    assert_eq!(rows[0].label, "total");
    let busy: Vec<_> = rows[1..]
        .iter()
        .filter(|r| r.flows.misses + r.flows.hits > 0)
        .collect();
    assert_eq!(
        busy.len(),
        1,
        "all fragments must dispatch to one shard: {:?}",
        rows[1..]
            .iter()
            .map(|r| (r.label.clone(), r.flows.misses + r.flows.hits))
            .collect::<Vec<_>>()
    );
    assert_eq!(busy[0].flows.misses, 1);
}

// ---------------------------------------------------------------------
// Metrics surface: pmgr `metrics [json]` on both planes, shard merge
// ---------------------------------------------------------------------

#[test]
fn metrics_json_on_single_router() {
    let mut r = single_router();
    for f in fragmented_udp() {
        r.receive(Mbuf::new(f, 0));
    }
    let out = run_command(&mut r, "metrics json").unwrap();
    assert!(out.starts_with("{\"merged\":{"), "{out}");
    assert!(out.contains("\"fragment_flows\":1"), "{out}");
    assert!(
        !out.contains("\"shards\""),
        "single router has no shard breakdown: {out}"
    );
    let text = run_command(&mut r, "metrics").unwrap();
    assert!(text.starts_with("== total =="), "{text}");
}

#[test]
fn metrics_json_on_parallel_router_has_shard_breakdown() {
    let shards = 4;
    let mut pr = parallel_router(shards);
    for i in 0..32u8 {
        let buf = PacketSpec::udp(v4(1), v4(2), 6000 + u16::from(i), 80, 64).build();
        pr.receive(Mbuf::new(buf, 0));
    }
    pr.flush();
    let out = run_command(&mut pr, "metrics json").unwrap();
    assert!(out.starts_with("{\"merged\":{"), "{out}");
    assert!(out.contains("\"shards\":["), "{out}");
    // merged + one object per shard, each with a "gates" section.
    assert_eq!(out.matches("\"gates\"").count(), shards + 1, "{out}");
}

#[test]
fn shard_registries_merge_into_total() {
    let mut pr = parallel_router(4);
    for i in 0..64u8 {
        let buf = PacketSpec::udp(v4(1), v4(2), 7000 + u16::from(i), 80, 64).build();
        pr.receive(Mbuf::new(buf, 0));
    }
    pr.flush();
    let rows = pr.cp_metrics_rows();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].label, "total");
    let total = &rows[0].metrics;
    let sum = |f: &dyn Fn(&router_plugins::core::MetricsSnapshot) -> u64| -> u64 {
        rows[1..].iter().map(|r| f(&r.metrics)).sum()
    };
    assert_eq!(total.if_rx_packets[0], sum(&|m| m.if_rx_packets[0]));
    assert_eq!(total.if_rx_packets[0], 64);
    for g in 0..router_plugins::core::gate::GATE_COUNT {
        assert_eq!(total.class_misses[g], sum(&move |m| m.class_misses[g]));
        assert_eq!(total.gate_calls[g], sum(&move |m| m.gate_calls[g]));
    }
    // 64 distinct source ports spread over 4 shards: more than one shard
    // must actually have seen traffic for the merge to mean anything.
    let active = rows[1..]
        .iter()
        .filter(|r| r.metrics.if_rx_packets[0] > 0)
        .count();
    assert!(active > 1, "workload only reached {active} shard(s)");
}

// ---------------------------------------------------------------------
// Tracer surface: pmgr `trace on|off|dump` over the parallel plane
// ---------------------------------------------------------------------

#[test]
fn trace_dump_labels_shard_origin() {
    let mut pr = parallel_router(2);
    assert_eq!(
        run_command(&mut pr, "trace dump").unwrap(),
        "no trace events"
    );
    run_command(&mut pr, "trace on").unwrap();
    for i in 0..8u8 {
        let buf = PacketSpec::udp(v4(1), v4(2), 8000 + u16::from(i), 80, 64).build();
        pr.receive(Mbuf::new(buf, 0));
    }
    pr.flush();
    let out = run_command(&mut pr, "trace dump 64").unwrap();
    assert!(
        out.contains("[shard 0]") || out.contains("[shard 1]"),
        "{out}"
    );
    assert!(
        out.contains("[shard] shard"),
        "dispatch events traced: {out}"
    );
    assert!(out.contains("[flow] flow created"), "{out}");
    run_command(&mut pr, "trace off").unwrap();
    let seq_before: Vec<String> = out.lines().map(str::to_string).collect();
    for i in 0..4u8 {
        let buf = PacketSpec::udp(v4(3), v4(2), 8100 + u16::from(i), 80, 64).build();
        pr.receive(Mbuf::new(buf, 0));
    }
    pr.flush();
    let after = run_command(&mut pr, "trace dump 64").unwrap();
    assert_eq!(
        after.lines().count(),
        seq_before.len(),
        "tracer off must record nothing new"
    );
}
