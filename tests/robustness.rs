//! Robustness: the router must survive arbitrary byte soup and mutated
//! packets with every gate armed — a kernel data path never panics on
//! wire input. (Drops are fine; UB/panics/hangs are not.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use router_plugins::core::ip_core::{Disposition, DropReason};
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{FaultPolicy, Gate, HealthState, Router, RouterConfig};
use router_plugins::netsim::topology::{Port, Topology};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn armed_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: true,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    r.add_route("10.0.0.0".parse().unwrap(), 8, 2);
    run_script(
        &mut r,
        "
        load firewall
        create firewall action=allow
        bind fw firewall 0 <*, *, TCP, *, *, *>
        load opt6
        create opt6
        bind opts opt6 0 <*, *, *, *, *, *>
        load ah
        create ah mode=verify key=k spi=1
        bind ipsec ah 0 <2001:db8:dead::/48, *, *, *, *, *>
        load stats
        create stats
        bind stats stats 0 <*, *, *, *, *, *>
        load drr
        create drr quantum=1500 limit=8
        attach 1 drr 0
        bind sched drr 0 <*, *, UDP, *, *, *>
        ",
    )
    .unwrap();
    r
}

#[test]
fn random_bytes_never_panic() {
    let mut r = armed_router();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for i in 0..5000 {
        let len = rng.gen_range(0..200);
        let mut data = vec![0u8; len];
        rng.fill(&mut data[..]);
        // Half the time, force a plausible version nibble so parsing goes
        // deeper before failing.
        if len > 0 && rng.gen_bool(0.5) {
            data[0] = if rng.gen_bool(0.5) { 0x45 } else { 0x60 };
        }
        let _ = r.receive(Mbuf::new(data, i % 4));
    }
    // Router still works afterwards.
    let ok = PacketSpec::udp(v6_host(1), v6_host(9), 1, 2, 32).build();
    let d = r.receive(Mbuf::new(ok, 0));
    assert!(matches!(
        d,
        router_plugins::core::ip_core::Disposition::Queued(1)
    ));
}

#[test]
fn mutated_valid_packets_never_panic() {
    let mut r = armed_router();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let templates = [
        PacketSpec::udp(v6_host(1), v6_host(9), 1000, 2000, 64).build(),
        PacketSpec::tcp(v6_host(2), v6_host(9), 1000, 443, 64).build(),
        PacketSpec::udp(
            "10.1.2.3".parse().unwrap(),
            "10.9.9.9".parse().unwrap(),
            5,
            6,
            64,
        )
        .build(),
        PacketSpec::udp(v6_host(3), v6_host(9), 7, 8, 64)
            .with_hbh_option(5, vec![0, 0])
            .build(),
    ];
    for i in 0..5000 {
        let mut p = templates[i % templates.len()].clone();
        // Up to 4 random byte mutations.
        for _ in 0..rng.gen_range(1..=4) {
            let pos = rng.gen_range(0..p.len());
            p[pos] ^= 1 << rng.gen_range(0..8);
        }
        let _ = r.receive(Mbuf::new(p, (i % 4) as u32));
    }
    // Drain whatever got queued; must terminate.
    let mut total = 0;
    while r.pump(1, 64) > 0 {
        total += 1;
        assert!(total < 10_000);
        r.take_tx(1);
    }
}

// ------------------------------------------------------------------
// Plugin supervision: a faulting plugin loses packets, never the router.
// ------------------------------------------------------------------

fn supervised_router(script: &str) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(&mut r, script).unwrap();
    r
}

fn udp(sport: u16) -> Mbuf {
    Mbuf::new(
        PacketSpec::udp(v6_host(1), v6_host(9), sport, 2000, 64).build(),
        0,
    )
}

/// The acceptance scenario: a chaos instance panicking on every 3rd packet
/// at the input (firewall) gate. The router forwards every non-faulting
/// packet of a 1000-packet workload, the instance ends up quarantined,
/// affected flows fall back to the default path, and `pmgr health`
/// reports the transition.
#[test]
fn chaos_every_third_packet_quarantine_acceptance() {
    let mut r = supervised_router(
        "load chaos\ncreate chaos mode=panic every=3\n\
         bind fw chaos 0 <*, *, UDP, *, *, *>",
    );
    let mut forwarded = 0u64;
    let mut faulted = 0u64;
    for i in 0..1000u32 {
        // 40 distinct flows so quarantine has live cache entries to flush.
        match r.receive(udp(1000 + (i % 40) as u16)) {
            Disposition::Forwarded(_) => forwarded += 1,
            Disposition::Dropped(DropReason::PluginFault(Gate::Firewall)) => faulted += 1,
            other => panic!("packet {i}: unexpected disposition {other:?}"),
        }
    }
    // Faults on calls 3, 6 and 9; the third fault crosses the quarantine
    // threshold (policy default 3), and every later packet forwards.
    assert_eq!(faulted, 3);
    assert_eq!(forwarded, 997);
    let reports = r.health_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].plugin, "chaos");
    assert_eq!(reports[0].health, HealthState::Quarantined);
    let health = run_command(&mut r, "health").unwrap();
    assert!(health.contains("quarantined"), "{health}");
    assert!(health.contains("injected panic"), "{health}");
    let faults = run_command(&mut r, "faults").unwrap();
    assert!(faults.contains("quarantines=1"), "{faults}");
    let s = r.stats();
    assert_eq!(s.dropped_fault, 3);
    assert_eq!(s.plugin_quarantines, 1);
    assert_eq!(s.forwarded, forwarded);
}

/// Panic containment holds at every gate of the pipeline, including the
/// scheduling gate on the egress side.
#[test]
fn chaos_panics_contained_at_every_gate() {
    for gate in ["fw", "opts", "ipsec", "route", "stats", "sched"] {
        let mut r = supervised_router(&format!(
            "load chaos\ncreate chaos mode=panic every=3\n\
             bind {gate} chaos 0 <*, *, UDP, *, *, *>"
        ));
        let mut dropped = 0u32;
        let mut passed = 0u32;
        for i in 0..30u16 {
            match r.receive(udp(100 + i)) {
                Disposition::Forwarded(_) | Disposition::Queued(_) => passed += 1,
                Disposition::Dropped(DropReason::PluginFault(_)) => dropped += 1,
                other => panic!("gate {gate}: unexpected disposition {other:?}"),
            }
        }
        assert_eq!(dropped, 3, "gate {gate}: three faults then quarantine");
        assert_eq!(passed, 27, "gate {gate}");
        assert_eq!(
            r.health_reports()[0].health,
            HealthState::Quarantined,
            "gate {gate}"
        );
    }
}

/// A quarantined instance is restarted from its factory after the policy
/// backoff (simulated time); a second quarantine doubles the backoff.
#[test]
fn quarantined_instance_restarts_with_backoff() {
    let mut r = supervised_router(
        "load chaos\ncreate chaos mode=panic every=1\n\
         bind stats chaos 0 <*, *, UDP, *, *, *>",
    );
    for i in 0..3u16 {
        assert!(matches!(
            r.receive(udp(100 + i)),
            Disposition::Dropped(DropReason::PluginFault(Gate::Stats))
        ));
    }
    let rep = &r.health_reports()[0];
    assert_eq!(rep.health, HealthState::Quarantined);
    assert_eq!(rep.restart_at_ns, Some(1_000_000), "initial 1ms backoff");
    // While quarantined the flow falls back to the default path.
    assert!(matches!(r.receive(udp(50)), Disposition::Forwarded(1)));
    // Advance past the backoff: the instance is rebuilt from the factory
    // with its create-time config and its filter binding re-installed.
    r.set_time_ns(1_000_000);
    let rep = &r.health_reports()[0];
    assert_eq!(rep.health, HealthState::Healthy);
    assert_eq!(rep.restarts, 1);
    assert_eq!(r.stats().plugin_restarts, 1);
    // Same config, same crash: the second quarantine re-arms the restart
    // timer with the backoff doubled (1ms → 2ms from t=1ms).
    for i in 0..3u16 {
        assert!(matches!(r.receive(udp(60 + i)), Disposition::Dropped(_)));
    }
    let rep = &r.health_reports()[0];
    assert_eq!(rep.health, HealthState::Quarantined);
    assert_eq!(rep.restart_at_ns, Some(3_000_000), "doubled backoff");
}

/// Restart rebuilds from the create-time config: an instance rearmed into
/// a crash loop at run time comes back benign and serves traffic again.
#[test]
fn restart_recovers_create_time_config() {
    let mut r =
        supervised_router("load chaos\ncreate chaos\nbind stats chaos 0 <*, *, UDP, *, *, *>");
    assert!(matches!(r.receive(udp(1)), Disposition::Forwarded(1)));
    // Rearm the live instance into a crash loop mid-stream.
    run_command(&mut r, "msg chaos 0 set mode=panic every=1").unwrap();
    for i in 2..5u16 {
        assert!(matches!(r.receive(udp(i)), Disposition::Dropped(_)));
    }
    assert_eq!(r.health_reports()[0].health, HealthState::Quarantined);
    r.set_time_ns(2_000_000);
    assert_eq!(r.health_reports()[0].health, HealthState::Healthy);
    // The rebuilt instance runs the (benign) create-time config.
    for i in 10..20u16 {
        assert!(matches!(r.receive(udp(i)), Disposition::Forwarded(1)));
    }
    let rep = &r.health_reports()[0];
    assert_eq!(rep.health, HealthState::Healthy);
    assert_eq!(rep.faults, 0, "fault window reset by the restart");
    assert_eq!(rep.total_faults, 3, "lifetime count survives");
}

/// A stalling instance (modelled by charging absurd per-call cost) trips
/// the packet budget: calls complete and packets forward, but the faults
/// accumulate to quarantine.
#[test]
fn stalling_instance_exceeds_budget_and_quarantines() {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        fault_policy: FaultPolicy {
            packet_budget_ns: 10_000,
            restart: false,
            ..FaultPolicy::default()
        },
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(
        &mut r,
        "load chaos\ncreate chaos mode=stall cost=50000\n\
         bind stats chaos 0 <*, *, UDP, *, *, *>",
    )
    .unwrap();
    // A stall is a completed call: the packet still forwards, but each
    // call charges 50µs against a 10µs budget and counts as a fault.
    for i in 0..3u16 {
        assert!(matches!(r.receive(udp(i)), Disposition::Forwarded(1)));
    }
    assert_eq!(r.stats().plugin_faults, 3);
    let rep = &r.health_reports()[0];
    assert_eq!(rep.health, HealthState::Quarantined);
    let last = rep.last_fault.as_deref().unwrap();
    assert!(last.contains("budget exceeded"), "{last}");
    assert_eq!(rep.restart_at_ns, None, "restart disabled by policy");
    // Quarantined means off the path: later packets skip the stall.
    assert!(matches!(r.receive(udp(9)), Disposition::Forwarded(1)));
}

/// Link-level fault injection across a 3-node chain: loss on the first
/// hop, corruption on the second. Counters account for every packet —
/// nothing is silently blackholed.
#[test]
fn topology_fault_injection_three_nodes() {
    fn node() -> Router {
        let mut r = Router::new(RouterConfig {
            verify_checksums: false,
            ..RouterConfig::default()
        });
        register_builtin_factories(&mut r.loader);
        r.add_route(v6_host(0), 32, 1);
        r
    }
    let mut topo = Topology::new();
    let a = topo.add_node(node());
    let b = topo.add_node(node());
    let c = topo.add_node(node());
    topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
    topo.connect(Port { node: b, iface: 1 }, Port { node: c, iface: 0 });
    // Every 2nd packet leaving A is lost; every 2nd leaving B is corrupted.
    topo.set_link_loss(Port { node: a, iface: 1 }, 2);
    topo.set_link_corruption(Port { node: b, iface: 1 }, 2);
    let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 7, 8, 100).build();
    for _ in 0..12 {
        topo.inject(Port { node: a, iface: 0 }, pkt.clone());
    }
    topo.run_until_idle(10);
    assert_eq!(topo.lost_to_faults, 6, "half lost on the A→B hop");
    assert_eq!(topo.corrupted_by_faults, 3, "half of the survivors mangled");
    let got = topo.take_delivered(c);
    assert_eq!(got.len(), 6, "corrupted packets still arrive, lost do not");
    let orig_last = *pkt.last().unwrap();
    let flipped = got
        .iter()
        .filter(|m| *m.data().last().unwrap() == orig_last ^ 0xFF)
        .count();
    assert_eq!(flipped, 3);
}

/// An interface going down mid-stream blackholes the hop (counted), and
/// traffic resumes when it comes back — end to end through the chain.
#[test]
fn topology_interface_down_and_recovery() {
    fn node() -> Router {
        let mut r = Router::new(RouterConfig {
            verify_checksums: false,
            ..RouterConfig::default()
        });
        register_builtin_factories(&mut r.loader);
        r.add_route(v6_host(0), 32, 1);
        r
    }
    let mut topo = Topology::new();
    let a = topo.add_node(node());
    let b = topo.add_node(node());
    let link = Port { node: a, iface: 1 };
    topo.connect(link, Port { node: b, iface: 0 });
    let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 7, 8, 64).build();
    topo.set_link_down(link, true);
    for _ in 0..4 {
        topo.inject(Port { node: a, iface: 0 }, pkt.clone());
    }
    topo.run_until_idle(10);
    assert_eq!(topo.take_delivered(b).len(), 0);
    assert_eq!(topo.lost_to_faults, 4);
    topo.set_link_down(link, false);
    for _ in 0..4 {
        topo.inject(Port { node: a, iface: 0 }, pkt.clone());
    }
    topo.run_until_idle(10);
    assert_eq!(topo.take_delivered(b).len(), 4);
    assert_eq!(topo.lost_to_faults, 4, "no further losses");
}

#[test]
fn truncations_of_every_template_never_panic() {
    let mut r = armed_router();
    let templates = [
        PacketSpec::udp(v6_host(1), v6_host(9), 1000, 2000, 64).build(),
        PacketSpec::udp(v6_host(3), v6_host(9), 7, 8, 32)
            .with_hbh_option(5, vec![0, 0])
            .build(),
    ];
    for t in &templates {
        for cut in 0..t.len() {
            let _ = r.receive(Mbuf::new(t[..cut].to_vec(), 0));
        }
    }
}
