//! Robustness: the router must survive arbitrary byte soup and mutated
//! packets with every gate armed — a kernel data path never panics on
//! wire input. (Drops are fine; UB/panics/hangs are not.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn armed_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: true,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    r.add_route("10.0.0.0".parse().unwrap(), 8, 2);
    run_script(
        &mut r,
        "
        load firewall
        create firewall action=allow
        bind fw firewall 0 <*, *, TCP, *, *, *>
        load opt6
        create opt6
        bind opts opt6 0 <*, *, *, *, *, *>
        load ah
        create ah mode=verify key=k spi=1
        bind ipsec ah 0 <2001:db8:dead::/48, *, *, *, *, *>
        load stats
        create stats
        bind stats stats 0 <*, *, *, *, *, *>
        load drr
        create drr quantum=1500 limit=8
        attach 1 drr 0
        bind sched drr 0 <*, *, UDP, *, *, *>
        ",
    )
    .unwrap();
    r
}

#[test]
fn random_bytes_never_panic() {
    let mut r = armed_router();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for i in 0..5000 {
        let len = rng.gen_range(0..200);
        let mut data = vec![0u8; len];
        rng.fill(&mut data[..]);
        // Half the time, force a plausible version nibble so parsing goes
        // deeper before failing.
        if len > 0 && rng.gen_bool(0.5) {
            data[0] = if rng.gen_bool(0.5) { 0x45 } else { 0x60 };
        }
        let _ = r.receive(Mbuf::new(data, i % 4));
    }
    // Router still works afterwards.
    let ok = PacketSpec::udp(v6_host(1), v6_host(9), 1, 2, 32).build();
    let d = r.receive(Mbuf::new(ok, 0));
    assert!(matches!(
        d,
        router_plugins::core::ip_core::Disposition::Queued(1)
    ));
}

#[test]
fn mutated_valid_packets_never_panic() {
    let mut r = armed_router();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let templates = [
        PacketSpec::udp(v6_host(1), v6_host(9), 1000, 2000, 64).build(),
        PacketSpec::tcp(v6_host(2), v6_host(9), 1000, 443, 64).build(),
        PacketSpec::udp(
            "10.1.2.3".parse().unwrap(),
            "10.9.9.9".parse().unwrap(),
            5,
            6,
            64,
        )
        .build(),
        PacketSpec::udp(v6_host(3), v6_host(9), 7, 8, 64)
            .with_hbh_option(5, vec![0, 0])
            .build(),
    ];
    for i in 0..5000 {
        let mut p = templates[i % templates.len()].clone();
        // Up to 4 random byte mutations.
        for _ in 0..rng.gen_range(1..=4) {
            let pos = rng.gen_range(0..p.len());
            p[pos] ^= 1 << rng.gen_range(0..8);
        }
        let _ = r.receive(Mbuf::new(p, (i % 4) as u32));
    }
    // Drain whatever got queued; must terminate.
    let mut total = 0;
    while r.pump(1, 64) > 0 {
        total += 1;
        assert!(total < 10_000);
        r.take_tx(1);
    }
}

#[test]
fn truncations_of_every_template_never_panic() {
    let mut r = armed_router();
    let templates = [
        PacketSpec::udp(v6_host(1), v6_host(9), 1000, 2000, 64).build(),
        PacketSpec::udp(v6_host(3), v6_host(9), 7, 8, 32)
            .with_hbh_option(5, vec![0, 0])
            .build(),
    ];
    for t in &templates {
        for cut in 0..t.len() {
            let _ = r.receive(Mbuf::new(t[..cut].to_vec(), 0));
        }
    }
}
