//! Device supervision under real faults: a UDP egress whose peer dies
//! (connected-socket `ECONNREFUSED`) degrades and then recovers, a
//! deadline-shedding regression at the core, and the full chaos soak —
//! FaultyDev flapping every bound device plus mid-run shard kills over
//! a 10k+ packet run — ending with exact wire-to-wire conservation and
//! at least one quarantine→reopen cycle.

use router_plugins::core::dataplane::control::DeviceHealth;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{
    ControlPlane, ParallelRouter, ParallelRouterConfig, Router, RouterConfig,
};
use router_plugins::netdev::loopback::LoopbackDev;
use router_plugins::netdev::udp::UdpDev;
use router_plugins::netdev::{DeviceSupervisorConfig, FaultProgram, FaultyDev, IoPlane};
use router_plugins::netsim::traffic::{v6_host, Workload};
use router_plugins::packet::coarse_now_ns;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

const SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n";

fn single_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, SCRIPT).unwrap();
    r.add_route(v6_host(0), 32, 1);
    r
}

fn parallel_router(shards: usize) -> ParallelRouter {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 4096,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut pr, SCRIPT).unwrap();
    pr.cp_add_route(v6_host(0), 32, 1);
    pr
}

/// A connected UDP egress whose peer has died answers every send with
/// `ECONNREFUSED`; the supervisor must degrade the device on the error
/// deltas and recover it once the errors stop — with the conservation
/// ledger exact throughout (every refused packet is a counted drop).
#[test]
fn udp_dead_peer_degrades_then_recovers() {
    // A sink that exists long enough to learn its address, then dies.
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    let sink_addr = sink.local_addr().unwrap();
    drop(sink);

    let egress = UdpDev::connect("a1", "127.0.0.1:0", sink_addr).unwrap();
    let (ingress, _peer) = LoopbackDev::pair("lo-in", "peer-in", 4096);
    let in_handle = ingress.handle();

    let mut plane = IoPlane::new(single_router(), 64);
    plane.bind(0, Box::new(ingress));
    plane.bind(1, Box::new(egress));
    plane.supervise(DeviceSupervisorConfig {
        error_threshold: 4,
        error_window_polls: 4,
        // Only the error path is under test: the egress never receives,
        // so the stall detector must stay out of the way, and the
        // quarantine threshold is set beyond this test's horizon.
        rx_stall_polls: u32::MAX,
        quarantine_after: u32::MAX,
        recover_after: 4,
        ..DeviceSupervisorConfig::default()
    });

    let workload = Workload::uniform(4, 16, 128);
    let tb = router_plugins::netsim::testbench::Testbench::new(&workload);
    for pkt in tb.packets() {
        assert!(in_handle.inject(pkt.data()));
        plane.poll();
    }
    plane.poll_until_quiet(4, 1000);

    let rows = plane.device_rows();
    let a1 = rows.iter().find(|r| r.name == "a1").unwrap();
    assert_eq!(
        a1.health,
        DeviceHealth::Degraded,
        "dead peer must degrade the egress device ({:?})",
        a1.stats
    );
    // The kernel reports the queued ECONNREFUSED to whichever syscall
    // touches the socket next — the send *or* the ingress-side recv — so
    // the hard failures may land on either counter.
    assert!(
        a1.stats.tx_errors + a1.stats.rx_errors > 0,
        "ECONNREFUSED must count as a hard I/O error"
    );
    plane.check_conservation();

    // Quiet wire: the error window decays, clean polls accumulate, and
    // the device recovers without ever being quarantined.
    for _ in 0..64 {
        plane.poll();
    }
    let rows = plane.device_rows();
    let a1 = rows.iter().find(|r| r.name == "a1").unwrap();
    assert_eq!(
        a1.health,
        DeviceHealth::Healthy,
        "errors stopped, must recover"
    );
    assert_eq!(a1.quarantines, 0);
    plane.check_conservation();
}

/// The deadline shed at the core: a packet older than `max_sojourn_ns`
/// at dequeue is dropped as a counted `DeadlineExceeded`, the sojourn
/// histogram sees every stamped packet, and the internal ledger stays
/// exact.
#[test]
fn deadline_shedding_counts_and_conserves() {
    let mut r = single_router();
    r.set_max_sojourn_ns(1_000);
    let workload = Workload::uniform(2, 8, 128);
    let tb = router_plugins::netsim::testbench::Testbench::new(&workload);

    let wall = coarse_now_ns();
    let mut fresh = 0u64;
    let mut stale = 0u64;
    for (n, pkt) in tb.packets().iter().enumerate() {
        let mut m = pkt.clone();
        if n % 2 == 0 {
            m.timestamp_ns = wall; // within deadline (sojourn 0)
            fresh += 1;
        } else {
            m.timestamp_ns = wall.saturating_sub(1_000_000); // 1ms old
            stale += 1;
        }
        r.receive_stamped(m, wall);
    }
    let s = r.stats();
    assert_eq!(s.dropped_deadline, stale, "every stale packet must shed");
    assert_eq!(
        s.received,
        fresh + stale,
        "shed packets still count received"
    );
    assert_eq!(s.received, s.forwarded + s.dropped_total());
    let m = r.metrics_snapshot();
    assert_eq!(m.sojourn_ns.count, fresh + stale);
    assert!(
        m.sojourn_ns.quantile(0.99) >= 1_000_000 / 2,
        "stale sojourns recorded"
    );
}

/// The acceptance soak: both bound devices wrapped in [`FaultyDev`] and
/// flapped mid-run (ingress frame drops, egress hard-fail with
/// heal-on-reopen), two mid-run shard kills, 10k+ packets. Ends with
/// exact conservation, ≥1 device quarantine→reopen cycle, and a
/// populated sojourn histogram.
#[test]
fn chaos_soak_flaps_devices_kills_shards_and_conserves() {
    const PACKETS: usize = 12_000;
    const CHUNK: usize = 200;

    let (ingress, _peer_in) = LoopbackDev::pair("lo-in", "peer-in", 1 << 15);
    let (egress, _peer_out) = LoopbackDev::pair("lo-out", "peer-out", 1 << 15);
    let in_handle = ingress.handle();
    let out_handle = egress.handle();
    let (f_in, ctl_in) = FaultyDev::wrap(Box::new(ingress));
    let (f_out, ctl_out) = FaultyDev::wrap(Box::new(egress));

    let mut plane = IoPlane::new(parallel_router(2), CHUNK);
    plane.bind(0, Box::new(f_in));
    plane.bind(1, Box::new(f_out));
    plane.supervise(DeviceSupervisorConfig {
        error_threshold: 8,
        error_window_polls: 16,
        rx_stall_polls: u32::MAX,
        quarantine_after: 4,
        recover_after: 2,
        backoff_initial: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
    });

    let workload = Workload::uniform(24, PACKETS / 24, 200);
    let tb = router_plugins::netsim::testbench::Testbench::new(&workload);
    let packets = tb.packets();
    let chunks: Vec<_> = packets.chunks(CHUNK).collect();
    let n_chunks = chunks.len();

    for (ci, chunk) in chunks.into_iter().enumerate() {
        // Flap schedule: ingress drops every 5th frame through the first
        // quarter; egress hard-fails (healable) through the middle —
        // long enough at quarantine_after=4 to force a quarantine, whose
        // reopen then heals the fault.
        if ci == n_chunks / 8 {
            ctl_in.update(|p| p.drop_rx_every = 5);
        }
        if ci == n_chunks / 4 {
            ctl_in.set(FaultProgram::default());
        }
        if ci == n_chunks / 3 {
            ctl_out.update(|p| {
                p.fail_tx = true;
                p.heal_on_reopen = true;
            });
        }
        // Two mid-run shard kills (the shard tier journals and rebuilds).
        if ci == n_chunks / 2 || ci == (3 * n_chunks) / 4 {
            let _ = plane.plane_mut().cp_shard_kill(ci % 2);
        }
        for pkt in chunk {
            assert!(in_handle.inject(pkt.data()), "ingress wire overflow");
        }
        plane.poll();
        plane.poll();
        while out_handle.drain_tx().is_some() {}
        // Give the quarantine backoff wall-clock room to elapse so the
        // reopen (and its heal) actually happens mid-run.
        if plane
            .device_rows()
            .iter()
            .any(|r| r.health == DeviceHealth::Quarantined)
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Clear all faults and let everything settle: quarantined devices
    // reopen, shards drain, egress empties.
    ctl_in.set(FaultProgram::default());
    ctl_out.set(FaultProgram::default());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        plane.poll_until_quiet(4, 200);
        while out_handle.drain_tx().is_some() {}
        let rows = plane.device_rows();
        let all_live = rows.iter().all(|r| r.health != DeviceHealth::Quarantined);
        if all_live || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    plane.poll_until_quiet(4, 1000);

    // The soak must have genuinely hurt — and healed.
    let rows = plane.device_rows();
    let quarantines: u64 = rows.iter().map(|r| r.quarantines).sum();
    let reopens: u64 = rows.iter().map(|r| r.reopens).sum();
    assert!(quarantines >= 1, "no device was ever quarantined: {rows:?}");
    assert!(
        reopens >= 1,
        "no quarantine→reopen cycle completed: {rows:?}"
    );
    assert!(
        rows.iter().all(|r| r.health != DeviceHealth::Quarantined),
        "faults cleared, every device must be back on the wire: {rows:?}"
    );
    let led = plane.ledger();
    assert!(
        led.device_rx as usize >= PACKETS / 2,
        "soak barely ran: {led:?}"
    );
    assert!(
        led.tx_errors + led.tx_dropped > 0,
        "injected egress faults must be visible in the ledger: {led:?}"
    );

    // Exact wire-to-wire conservation across device death, revival, and
    // shard kills — the whole point.
    plane.check_conservation();

    // Ingress stamping flowed through to the sojourn histogram.
    let m = plane.plane_mut().metrics_snapshot();
    assert!(m.sojourn_ns.count > 0, "sojourn histogram never populated");
}
