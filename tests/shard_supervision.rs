//! Shard-level supervision: a fault confined to one shard must never
//! lose the router. These tests drive the parallel data plane through
//! panics, wedges, and saturating bursts and verify the three promises
//! of the supervisor: containment (the other shards keep serving and the
//! control plane never hangs), rebuild (a restarted shard replays the
//! command journal back into id lockstep), and accounting (every packet
//! lost in a fault window is counted under `shard_down`/`shard_overload`
//! — zero silent loss).

use router_plugins::core::ip_core::DropReason;
use router_plugins::core::obs::drop_reason_index;
use router_plugins::core::plugins::chaos::release_wedges;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::supervisor::HealthState;
use router_plugins::core::{ControlPlane, ParallelRouter, ParallelRouterConfig, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `release_wedges` is a global release valve; serialize the tests that
/// wedge worker threads so one test's release cannot free another's.
static WEDGE_LOCK: Mutex<()> = Mutex::new(());

fn wedge_guard() -> std::sync::MutexGuard<'static, ()> {
    // A failed sibling test only poisons the lock; the guarded resource
    // (the global wedge epoch) is still valid.
    WEDGE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn parallel(shards: usize, cfg: impl FnOnce(&mut ParallelRouterConfig)) -> ParallelRouter {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut c = ParallelRouterConfig {
        shards,
        router: RouterConfig {
            verify_checksums: false,
            ..RouterConfig::default()
        },
        ingress_depth: 64,
        ..ParallelRouterConfig::default()
    };
    cfg(&mut c);
    ParallelRouter::new(c, &template)
}

fn udp(dst_host: u16, sport: u16, dport: u16) -> Mbuf {
    Mbuf::new(
        PacketSpec::udp(v6_host(1), v6_host(dst_host), sport, dport, 64).build(),
        0,
    )
}

/// Poll the supervisor until `pred` holds for the shard's status row, or
/// panic after `deadline`.
fn wait_for(
    pr: &mut ParallelRouter,
    shard: usize,
    deadline: Duration,
    what: &str,
    pred: impl Fn(&router_plugins::core::ShardStatus) -> bool,
) {
    let t0 = Instant::now();
    loop {
        let status = pr.cp_shard_status();
        if pred(&status[shard]) {
            return;
        }
        assert!(
            t0.elapsed() < deadline,
            "shard {shard} never became {what}: {:?} restarts={} fault={:?}",
            status[shard].health,
            status[shard].restarts,
            status[shard].last_fault
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------
// Containment + rebuild: a killed shard restarts into id lockstep
// ---------------------------------------------------------------------

#[test]
fn killed_shard_restarts_and_rejoins_in_lockstep() {
    let mut pr = parallel(2, |_| {});
    run_script(
        &mut pr,
        "load firewall\ncreate firewall\nroute 2001:db8::/32 1",
    )
    .unwrap();

    // Offer some traffic to both shards, fully retired before the fault.
    for i in 0..40u16 {
        pr.receive(udp(200 + (i % 8), 4000 + i, 80));
    }
    pr.flush();
    let before = pr.stats();
    assert_eq!(before.received, 40);
    assert_eq!(before.received, before.forwarded + before.dropped_total());

    let out = run_command(&mut pr, "shard kill 0").unwrap();
    assert!(out.contains("kill injected"), "{out}");

    // The panic is confined: the worker dies, the dispatcher quarantines
    // it and restarts it with backoff — observable as a degraded shard
    // with a recorded fault.
    wait_for(&mut pr, 0, Duration::from_secs(5), "restarted", |s| {
        s.health == HealthState::Degraded && s.restarts >= 1
    });
    let status = pr.cp_shard_status();
    assert!(
        status[0]
            .last_fault
            .as_deref()
            .is_some_and(|f| f.contains("injected kill")),
        "{:?}",
        status[0].last_fault
    );
    assert_eq!(status[1].health, HealthState::Healthy, "{:?}", status[1]);

    // Journal replay put the rebuilt shard's id counters back in
    // lockstep: the next allocation collapses to a single reply instead
    // of a per-shard divergence error.
    let out = run_command(&mut pr, "create firewall").unwrap();
    assert_eq!(out, "firewall instance 1");
    let out = run_command(&mut pr, "bind fw firewall 1 <*, *, UDP, *, 9999, *>").unwrap();
    assert_eq!(out, "filter 0");

    // Traffic flows through both shards again, and the books balance:
    // everything offered is either on the wire or in a counted drop.
    for i in 0..40u16 {
        pr.receive(udp(200 + (i % 8), 5000 + i, 80));
    }
    pr.flush();
    let s = pr.stats();
    assert_eq!(s.received, s.forwarded + s.dropped_total());
}

// ---------------------------------------------------------------------
// The journal converges a shard that missed commands while it was down
// ---------------------------------------------------------------------

#[test]
fn commands_issued_while_a_shard_is_down_reach_it_through_the_journal() {
    // Restarts disabled: the killed shard stays down until the operator
    // intervenes, so commands demonstrably land while it cannot hear them.
    let mut pr = parallel(2, |c| {
        c.router.fault_policy.restart = false;
    });
    run_script(&mut pr, "load firewall\ncreate firewall").unwrap();

    pr.cp_shard_kill(0).unwrap();
    wait_for(&mut pr, 0, Duration::from_secs(5), "quarantined", |s| {
        s.health == HealthState::Quarantined
    });

    // Allocate an instance while shard 0 is down — only shard 1 executes
    // it, but the journal records it.
    let out = run_command(&mut pr, "create firewall").unwrap();
    assert_eq!(out, "firewall instance 1");

    // Operator restart overrides the exhausted budget and replays the
    // journal, including the command shard 0 never saw.
    let out = run_command(&mut pr, "shard restart 0").unwrap();
    assert!(out.contains("shard 0 restarted"), "{out}");

    // Both shards must now agree on the next id.
    let out = run_command(&mut pr, "create firewall").unwrap();
    assert_eq!(out, "firewall instance 2");
}

// ---------------------------------------------------------------------
// Watchdog: a wedged shard is classified stalled, not waited on forever
// ---------------------------------------------------------------------

#[test]
fn wedged_shard_is_quarantined_by_the_watchdog_and_flush_returns() {
    let _guard = wedge_guard();
    let mut pr = parallel(2, |c| {
        c.stall_timeout = Duration::from_millis(100);
    });
    run_script(
        &mut pr,
        "load chaos\n\
         create chaos mode=wedge\n\
         bind stats chaos 0 <*, *, UDP, *, 7777, *>\n\
         route 2001:db8::/32 1",
    )
    .unwrap();

    // Wedge whichever shard owns this flow (the chaos filter only
    // matches dport 7777, so the other shard never trips it).
    let trigger = udp(201, 6000, 7777);
    let victim = pr.shard_of(&trigger);
    pr.receive(trigger);
    std::thread::sleep(Duration::from_millis(20)); // let the worker dequeue and wedge

    // This flush used to block forever on the wedged barrier. Now the
    // watchdog classifies the shard as stalled and the wait moves on.
    let t0 = Instant::now();
    pr.flush();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "flush did not return promptly"
    );
    let status = pr.cp_shard_status();
    assert!(
        status[victim]
            .last_fault
            .as_deref()
            .is_some_and(|f| f.contains("stalled")),
        "expected a stall fault on shard {victim}: {:?}",
        status[victim]
    );

    // Release the wedged thread so the abandoned incarnation can exit and
    // be harvested, and let the backoff restart bring the shard back.
    release_wedges();
    wait_for(
        &mut pr,
        victim,
        Duration::from_secs(5),
        "serving again",
        |s| s.health == HealthState::Degraded && s.restarts >= 1,
    );

    // The rebuilt shard replayed the chaos binding from the journal;
    // disarm it before offering traffic to the same flow space.
    run_command(&mut pr, "msg chaos 0 set mode=none").unwrap();
    for i in 0..20u16 {
        pr.receive(udp(201, 6100 + i, 80));
    }
    pr.flush();
    let s = pr.stats();
    // Zero silent loss: the wedged packet and everything after it is
    // either forwarded or in a counted drop bucket.
    assert_eq!(s.received, s.forwarded + s.dropped_total());
}

// ---------------------------------------------------------------------
// Satellite regression: control fan-out over a pre-killed shard
// ---------------------------------------------------------------------

#[test]
fn control_map_and_flush_survive_a_dead_shard() {
    let mut pr = parallel(2, |c| {
        c.router.fault_policy.restart = false;
    });
    run_script(&mut pr, "load stats\ncreate stats").unwrap();

    pr.cp_shard_kill(1).unwrap();
    // Deliberately give the dispatcher no chance to notice the death
    // before the next control commands: the old fan-out blocked forever
    // on the dead shard's reply channel here.
    std::thread::sleep(Duration::from_millis(50));

    let t0 = Instant::now();
    let out = run_command(&mut pr, "stats").unwrap();
    assert!(out.starts_with("total:"), "{out}");
    pr.flush();
    let out = run_command(&mut pr, "msg stats 0 report").unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "control plane hung on a dead shard"
    );
    // Partial merge: the surviving shard's report plus an explicit
    // down marker for the dead one.
    assert!(out.contains("[shard 0]"), "{out}");
    assert!(out.contains("[shard 1] down"), "{out}");
}

// ---------------------------------------------------------------------
// Overload: dispatch to a saturated shard sheds counted, not silent
// ---------------------------------------------------------------------

#[test]
fn overload_shed_is_counted_in_stats_and_metrics() {
    let _guard = wedge_guard();
    const OFFERED: u64 = 50;
    let mut pr = parallel(1, |c| {
        c.ingress_depth = 8;
        c.overload_wait = Duration::ZERO;
        // Generous stall budget: the shard must stay *healthy* (merely
        // saturated) for the whole burst so the sheds land in the
        // overload bucket, not the down bucket.
        c.stall_timeout = Duration::from_secs(30);
    });
    run_script(
        &mut pr,
        "load chaos\n\
         create chaos mode=wedge\n\
         bind stats chaos 0 <*, *, UDP, *, 7777, *>\n\
         route 2001:db8::/32 1",
    )
    .unwrap();

    // The worker wedges on the trigger packet (the only flow the chaos
    // filter matches — wedge re-arms per matching packet, so the burst
    // itself must not trip it); the FIFO fills; the rest of the burst
    // must shed immediately (zero overload_wait) and be counted per
    // packet.
    pr.receive(udp(201, 7000, 7777));
    std::thread::sleep(Duration::from_millis(20)); // let the worker dequeue and wedge
    for i in 1..OFFERED {
        pr.receive(udp(201, 7000 + i as u16, 80));
    }
    let status = pr.cp_shard_status();
    assert_eq!(status[0].health, HealthState::Healthy, "{:?}", status[0]);
    let shed = status[0].shed_overload;
    assert!(
        shed >= OFFERED - 10,
        "expected most of the burst shed, got {shed}"
    );
    assert_eq!(status[0].shed_down, 0, "{:?}", status[0]);

    // Release and drain what was queued.
    release_wedges();
    pr.flush();

    let s = pr.stats();
    assert_eq!(s.received, OFFERED, "sheds must still count as received");
    assert_eq!(s.dropped_shard_overload, shed);
    assert_eq!(
        s.received,
        s.forwarded + s.dropped_total(),
        "zero silent loss: {s:?}"
    );

    // The metrics registry tells the same story in its drop slot.
    let m = pr.metrics_snapshot();
    assert_eq!(m.drops[drop_reason_index(DropReason::ShardOverload)], shed);
}
