//! Heap-allocation accounting for the zero-allocation fast path, under a
//! counting global allocator. This file holds exactly one test so no
//! concurrently running test can inflate the counters: with the pool
//! warm, a 10 000-packet steady-state run through the single-threaded
//! router must allocate no fresh mbuf buffers at all (pool `fresh`
//! counter), and its total allocator traffic must stay far below one
//! allocation per packet.

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netdev::loopback::LoopbackDev;
use router_plugins::netdev::{IoPlane, NetDev};
use router_plugins::netsim::testbench::Testbench;
use router_plugins::netsim::traffic::{v6_host, Workload};
use router_plugins::packet::{Mbuf, MbufPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pass-through allocator that counts every allocation (and every
/// reallocation — a growing `Vec` is allocator traffic too).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_fast_path_stays_off_the_allocator() {
    const STEADY_REPS: usize = 10;
    // 10 flows × 100 packets = 1000 per rep → 10 000 measured packets.
    let workload = Workload::uniform(10, 100, 512);
    let tb = Testbench::new(&workload);
    let packets_per_rep = workload.total_packets() as u64;

    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(
        &mut r,
        "load drr\n\
         create drr quantum=9180 limit=512\n\
         attach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>\n",
    )
    .unwrap();
    r.add_route(v6_host(0), 32, 1);

    // Warm up: fill the mbuf pool, classify every flow, grow the
    // scheduler queues and tx logs to their working size.
    tb.run_router_pooled(&mut r, 2);

    let fresh_before = r.pool_stats().fresh;
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let s = tb.run_router_pooled(&mut r, STEADY_REPS);
    let allocs_after = ALLOCATIONS.load(Ordering::Relaxed);
    let fresh_after = r.pool_stats().fresh;

    let measured = packets_per_rep * STEADY_REPS as u64;
    assert_eq!(s.packets, measured);
    assert_eq!(s.forwarded, measured);

    // The mbuf criterion is exact: a warm pool never misses.
    assert_eq!(
        fresh_after, fresh_before,
        "steady state allocated fresh mbuf buffers"
    );

    // Total allocator traffic: the packet path itself is allocation-free
    // once warm; the generous ceiling (< 0.01 allocations/packet, i.e.
    // < 100 total here) leaves room for incidental lazy initialization
    // without letting a per-packet clone regression through.
    let allocs = allocs_after - allocs_before;
    let per_packet = allocs as f64 / measured as f64;
    assert!(
        per_packet < 0.01,
        "steady state allocated {allocs} times over {measured} packets \
         ({per_packet:.4}/packet; ceiling 0.01)"
    );

    // Phase 2: the same discipline must hold with real device plumbing
    // in the loop — a router under an IoPlane fed by loopback NetDevs.
    // The injector is a peer loopback device driven from a test-owned
    // pool, so the whole cycle (peer tx → wire → device rx → pooled
    // mbuf → router → egress device → wire → peer rx) is closed-loop:
    // once the pools, wire freelists, and scratch batches are warm, a
    // steady-state run allocates nothing fresh anywhere.
    const CHUNK: usize = 64;
    let mut r2 = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r2.loader);
    run_script(
        &mut r2,
        "load drr\n\
         create drr quantum=9180 limit=512\n\
         attach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>\n",
    )
    .unwrap();
    r2.add_route(v6_host(0), 32, 1);

    let (dev_in, mut peer_in) = LoopbackDev::pair("lo-in", "peer-in", 256);
    let (dev_out, mut peer_out) = LoopbackDev::pair("lo-out", "peer-out", 256);
    let mut plane = IoPlane::new(r2, CHUNK * 2);
    plane.bind(0, Box::new(dev_in));
    plane.bind(1, Box::new(dev_out));

    let mut inj_pool = MbufPool::new(2 * CHUNK);
    let mut batch: Vec<Mbuf> = Vec::with_capacity(CHUNK);
    let run_rep = |plane: &mut IoPlane<Router>,
                   inj_pool: &mut MbufPool,
                   batch: &mut Vec<Mbuf>,
                   peer_in: &mut LoopbackDev,
                   peer_out: &mut LoopbackDev| {
        for chunk in tb.packets().chunks(CHUNK) {
            for pkt in chunk {
                batch.push(inj_pool.mbuf_from(pkt.data(), 0));
            }
            peer_in.tx_batch(batch, inj_pool);
            plane.poll();
            peer_out.rx_batch(usize::MAX, &mut |_p| {});
        }
    };

    // Warm-up reps, then the measured steady state.
    for _ in 0..2 {
        run_rep(
            &mut plane,
            &mut inj_pool,
            &mut batch,
            &mut peer_in,
            &mut peer_out,
        );
    }
    let fresh_router_before = plane.plane().pool_stats().fresh;
    let fresh_inj_before = inj_pool.stats().fresh;
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..STEADY_REPS {
        run_rep(
            &mut plane,
            &mut inj_pool,
            &mut batch,
            &mut peer_in,
            &mut peer_out,
        );
    }
    let allocs_after = ALLOCATIONS.load(Ordering::Relaxed);

    plane.check_conservation();
    assert_eq!(
        plane.ledger().device_rx,
        packets_per_rep * (STEADY_REPS as u64 + 2),
        "loopback wire lost frames"
    );
    assert_eq!(
        plane.plane().pool_stats().fresh,
        fresh_router_before,
        "device rx path allocated fresh mbuf buffers at steady state"
    );
    assert_eq!(
        inj_pool.stats().fresh,
        fresh_inj_before,
        "injector pool allocated fresh buffers at steady state"
    );
    let allocs = allocs_after - allocs_before;
    let per_packet = allocs as f64 / measured as f64;
    assert!(
        per_packet < 0.01,
        "I/O-plane steady state allocated {allocs} times over {measured} packets \
         ({per_packet:.4}/packet; ceiling 0.01)"
    );
}
