//! Property-based equivalence: for random filter sets and random packets,
//! the DAG (with either BMP plugin) must return exactly the same
//! most-specific filter as the O(n) linear scan. This is the correctness
//! backbone of the whole classification subsystem.

use proptest::prelude::*;
use router_plugins::classifier::{
    AddrMatch, BmpKind, DagTable, FilterSpec, LinearTable, PortMatch,
};
use router_plugins::packet::FlowTuple;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Clustered v4 addresses so prefixes actually overlap.
fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    (0u8..4, 0u8..4, 0u8..8, any::<u8>()).prop_map(|(a, b, c, d)| Ipv4Addr::new(10 + a, b, c, d))
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    (0u16..4, 0u16..4, any::<u16>())
        .prop_map(|(a, b, c)| Ipv6Addr::new(0x2001, 0xdb8, a, b, 0, 0, 0, c))
}

fn arb_addr_match() -> impl Strategy<Value = AddrMatch> {
    prop_oneof![
        Just(AddrMatch::Any),
        (arb_v4(), 0u8..=32).prop_map(|(a, l)| AddrMatch::prefix(IpAddr::V4(a), l)),
        (arb_v6(), 0u8..=128).prop_map(|(a, l)| AddrMatch::prefix(IpAddr::V6(a), l)),
    ]
}

/// Exact ports or wildcard (partial range overlaps are rejected by the
/// DAG by design; nested ranges are covered by a dedicated test below).
fn arb_port_match() -> impl Strategy<Value = PortMatch> {
    prop_oneof![Just(PortMatch::Any), (1u16..64).prop_map(PortMatch::eq),]
}

fn arb_filter() -> impl Strategy<Value = FilterSpec> {
    (
        arb_addr_match(),
        arb_addr_match(),
        prop_oneof![Just(None), Just(Some(6u8)), Just(Some(17u8))],
        arb_port_match(),
        arb_port_match(),
        prop_oneof![Just(None), Just(Some(0u32)), Just(Some(1u32))],
    )
        .prop_map(|(src, dst, proto, sport, dport, rx_if)| FilterSpec {
            src,
            dst,
            proto,
            sport,
            dport,
            rx_if,
        })
}

fn arb_tuple() -> impl Strategy<Value = FlowTuple> {
    (
        prop_oneof![arb_v4().prop_map(IpAddr::V4), arb_v6().prop_map(IpAddr::V6)],
        prop_oneof![arb_v4().prop_map(IpAddr::V4), arb_v6().prop_map(IpAddr::V6)],
        prop_oneof![Just(6u8), Just(17u8), Just(1u8)],
        1u16..64,
        1u16..64,
        0u32..2,
    )
        .prop_map(|(src, dst, proto, sport, dport, rx_if)| FlowTuple {
            src,
            dst,
            proto,
            sport,
            dport,
            rx_if,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dag_equals_linear(
        filters in prop::collection::vec(arb_filter(), 1..24),
        tuples in prop::collection::vec(arb_tuple(), 1..48),
        bspl in any::<bool>(),
    ) {
        let kind = if bspl { BmpKind::Bspl } else { BmpKind::Patricia };
        let mut dag = DagTable::new(kind);
        let mut lin = LinearTable::new();
        for (i, f) in filters.into_iter().enumerate() {
            // Ids advance in lockstep (both assign sequentially), so
            // values compare directly.
            dag.insert(f.clone(), i).unwrap();
            lin.insert(f, i);
        }
        for t in tuples {
            let d = dag.lookup(&t).map(|(_, v)| *v);
            let l = lin.lookup(&t).map(|(_, v)| *v);
            prop_assert_eq!(d, l, "diverged on {}", t);
        }
    }

    #[test]
    fn dag_equals_linear_after_removals(
        filters in prop::collection::vec(arb_filter(), 4..16),
        remove_mask in prop::collection::vec(any::<bool>(), 4..16),
        tuples in prop::collection::vec(arb_tuple(), 1..32),
    ) {
        let mut dag = DagTable::new(BmpKind::Bspl);
        let mut lin = LinearTable::new();
        let mut ids = Vec::new();
        for (i, f) in filters.into_iter().enumerate() {
            let did = dag.insert(f.clone(), i).unwrap();
            let lid = lin.insert(f, i);
            ids.push((did, lid));
        }
        for (i, &rm) in remove_mask.iter().enumerate() {
            if rm {
                if let Some((did, lid)) = ids.get(i) {
                    dag.remove(*did).unwrap();
                    lin.remove(*lid).unwrap();
                }
            }
        }
        for t in tuples {
            let d = dag.lookup(&t).map(|(_, v)| *v);
            let l = lin.lookup(&t).map(|(_, v)| *v);
            prop_assert_eq!(d, l, "diverged after removal on {}", t);
        }
    }
}

#[test]
fn nested_port_ranges_match_linear() {
    let specs = [
        "*, *, UDP, *, 1000-2000, *",
        "*, *, UDP, *, 1200-1800, *",
        "*, *, UDP, *, 1500, *",
        "*, *, UDP, 100-200, *, *",
        "*, *, *, *, *, *",
    ];
    let mut dag = DagTable::new(BmpKind::Bspl);
    let mut lin = LinearTable::new();
    for (i, s) in specs.iter().enumerate() {
        let f: FilterSpec = s.parse().unwrap();
        dag.insert(f.clone(), i).unwrap();
        lin.insert(f, i);
    }
    for sport in [50u16, 150, 250] {
        for dport in [999u16, 1000, 1199, 1200, 1499, 1500, 1501, 1801, 2000, 2001] {
            let t = FlowTuple {
                src: "10.0.0.1".parse().unwrap(),
                dst: "10.0.0.2".parse().unwrap(),
                proto: 17,
                sport,
                dport,
                rx_if: 0,
            };
            assert_eq!(
                dag.lookup(&t).map(|(_, v)| *v),
                lin.lookup(&t).map(|(_, v)| *v),
                "sport={sport} dport={dport}"
            );
        }
    }
}
