//! Differential tests for the internet-scale state structures (E18).
//!
//! The resizing/evicting flow table and the hot-prefix FIB cache are pure
//! performance features: they must be semantically invisible. These tests
//! drive the scale configuration and a paper-default baseline with identical
//! packet sequences and assert byte-identical forwarding on both data
//! planes, including a route-update interleave that would expose a stale
//! FIB-cache entry (the hidden-prefix hazard).

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use router_plugins::classifier::flow_table::FlowTableConfig;
use router_plugins::core::ip_core::Disposition;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{
    ControlPlane, DispatchMode, ParallelRouter, ParallelRouterConfig, Router, RouterConfig,
};
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::{FlowTuple, Mbuf};

/// Flow table forced through many incremental resizes and LRU evictions:
/// 16 boot buckets doubling up to 1024, and a 192-record cap against a
/// workload of ~400 concurrent flows.
fn scale_flow_config() -> FlowTableConfig {
    FlowTableConfig {
        buckets: 16,
        max_buckets: 1 << 10,
        initial_records: 32,
        max_records: 192,
        lru_evict: true,
        ..RouterConfig::default().flow_table
    }
}

/// Paper-default fixed-size table: no resize (`max_buckets: 0`), record
/// pool large enough that nothing is ever evicted.
fn baseline_flow_config() -> FlowTableConfig {
    FlowTableConfig {
        max_buckets: 0,
        ..RouterConfig::default().flow_table
    }
}

const SCALE_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load firewall\n\
     create firewall action=deny\n\
     bind fw firewall 0 <*, *, UDP, *, 9999, *>\n\
     route 10.0.0.0/8 1\n\
     route 10.64.0.0/10 2\n";

struct DiffFlow {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    sport: u16,
    dport: u16,
    count: usize,
}

fn diff_flows() -> Vec<DiffFlow> {
    let mut flows = Vec::new();
    // Forwarded flows, far more concurrent flows than the scale table's
    // 192-record cap, spread over both routed prefixes.
    for i in 0..384u32 {
        flows.push(DiffFlow {
            src: Ipv4Addr::new(192, 0, 2, (i % 200) as u8 + 1),
            dst: Ipv4Addr::new(10, (i % 128) as u8, (i / 128) as u8 + 1, 7),
            sport: 4000 + (i % 1000) as u16,
            dport: 80,
            count: 3 + (i as usize % 4),
        });
    }
    // Firewall-denied flows.
    for i in 0..8u32 {
        flows.push(DiffFlow {
            src: Ipv4Addr::new(192, 0, 2, 250),
            dst: Ipv4Addr::new(10, 1, 1, i as u8 + 1),
            sport: 4100 + i as u16,
            dport: 9999,
            count: 6,
        });
    }
    // No-route flows (172.16/12 is not covered).
    for i in 0..8u32 {
        flows.push(DiffFlow {
            src: Ipv4Addr::new(192, 0, 2, 251),
            dst: Ipv4Addr::new(172, 16, 0, i as u8 + 1),
            sport: 4200 + i as u16,
            dport: 80,
            count: 4,
        });
    }
    flows
}

/// Interleaved packet sequence with a per-flow sequence number stamped in
/// the last 4 payload bytes (checksum verification is off in this rig).
fn diff_packets() -> Vec<Mbuf> {
    let flows = diff_flows();
    let mut seqs = vec![0u32; flows.len()];
    let mut out = Vec::new();
    let mut round = 0usize;
    loop {
        let mut emitted = false;
        for (fi, f) in flows.iter().enumerate() {
            if round < f.count {
                let mut m = Mbuf::new(
                    PacketSpec::udp(IpAddr::V4(f.src), IpAddr::V4(f.dst), f.sport, f.dport, 64)
                        .build(),
                    0,
                );
                let seq = seqs[fi];
                seqs[fi] += 1;
                let data = m.data_mut();
                let n = data.len();
                data[n - 4..].copy_from_slice(&seq.to_be_bytes());
                out.push(m);
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
        round += 1;
    }
    out
}

fn build_router(flow_table: FlowTableConfig) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        flow_table,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, SCALE_SCRIPT).unwrap();
    r
}

/// Drive a router through the packet sequence, recording each disposition
/// and then draining every egress queue into per-interface byte streams.
fn run_sequence(r: &mut Router, packets: &[Mbuf]) -> (Vec<Disposition>, Vec<Vec<Vec<u8>>>) {
    let mut dispositions = Vec::with_capacity(packets.len());
    for pkt in packets {
        let d = r.receive(pkt.clone());
        if let Disposition::Queued(i) = d {
            r.pump(i, usize::MAX);
        }
        dispositions.push(d);
    }
    let mut tx = Vec::new();
    for i in 0..r.interface_count() {
        tx.push(
            r.take_tx(i as u32)
                .iter()
                .map(|m| m.data().to_vec())
                .collect(),
        );
    }
    (dispositions, tx)
}

/// Tentpole differential: a flow table that resizes its bucket array
/// mid-stream and evicts LRU records at the cap must forward the exact
/// same bytes, in the same order, with the same per-packet dispositions
/// as the paper's fixed-size table.
#[test]
fn resizing_evicting_flow_table_matches_fixed_baseline() {
    let packets = diff_packets();

    let mut scale = build_router(scale_flow_config());
    let mut base = build_router(baseline_flow_config());

    let (scale_disp, scale_tx) = run_sequence(&mut scale, &packets);
    let (base_disp, base_tx) = run_sequence(&mut base, &packets);

    assert_eq!(scale_disp, base_disp, "per-packet dispositions diverged");
    assert_eq!(scale_tx, base_tx, "emitted bytes diverged");

    let ss = scale.stats();
    let bs = base.stats();
    assert_eq!(ss.received, bs.received);
    assert_eq!(ss.forwarded, bs.forwarded);
    assert_eq!(ss.dropped_total(), bs.dropped_total());
    assert_eq!(
        ss.received,
        ss.forwarded + ss.dropped_total(),
        "conservation violated"
    );

    // The machinery under test actually engaged.
    let fs = scale.flow_stats();
    assert!(fs.resize_steps > 0, "no incremental resize happened");
    assert!(fs.evicted_lru > 0, "no LRU eviction happened");
    assert!(
        fs.live <= 192,
        "live records {} exceed the configured cap",
        fs.live
    );
    let bfs = base.flow_stats();
    assert_eq!(bfs.resize_steps, 0, "baseline must not resize");
    assert_eq!(bfs.evicted_lru, 0, "baseline must not evict");

    // The FIB cache served most repeat lookups on both sides.
    assert!(scale.fib_cache_stats().hits > 0);
}

/// Per-flow delivered sequence numbers, grouped by the emitted packet's
/// five-tuple, in emission order.
fn deliveries(tx: &[Mbuf]) -> HashMap<FlowTuple, Vec<u32>> {
    let mut map: HashMap<FlowTuple, Vec<u32>> = HashMap::new();
    for m in tx {
        let mut t = FlowTuple::from_mbuf(m).expect("emitted packet parses");
        t.rx_if = 0;
        let d = m.data();
        let seq = u32::from_be_bytes(d[d.len() - 4..].try_into().unwrap());
        map.entry(t).or_default().push(seq);
    }
    map
}

/// Same differential on the parallel data plane: shards running the
/// resizing/evicting configuration must deliver every flow with the same
/// per-flow packet order and totals as the single-threaded reference,
/// across a mid-stream route update applied to both planes.
#[test]
fn parallel_plane_matches_single_under_resize_and_route_churn() {
    let packets = diff_packets();
    let split = packets.len() / 2;

    // Single-threaded reference with the scale flow table.
    let mut single = build_router(scale_flow_config());
    let mut single_tx = Vec::new();
    for (n, pkt) in packets.iter().enumerate() {
        if n == split {
            single.cp_add_route(IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)), 16, 3);
        }
        let d = single.receive(pkt.clone());
        if let Disposition::Queued(i) = d {
            single.pump(i, usize::MAX);
        }
    }
    for i in 0..single.interface_count() {
        single_tx.extend(single.take_tx(i as u32));
    }

    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut par = ParallelRouter::new(
        ParallelRouterConfig {
            shards: 4,
            router: RouterConfig {
                verify_checksums: false,
                flow_table: scale_flow_config(),
                ..RouterConfig::default()
            },
            ingress_depth: 256,
            dispatch: DispatchMode::Ring,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut par, SCALE_SCRIPT).unwrap();
    for (n, pkt) in packets.iter().enumerate() {
        if n == split {
            // Route updates must quiesce in-flight packets before the new
            // FIB (and its cache invalidation) takes effect, so the
            // before/after delivery sets match the single-threaded plane.
            par.flush();
            par.cp_add_route(IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)), 16, 3);
        }
        par.receive(pkt.clone());
    }
    par.flush();
    let mut par_tx = Vec::new();
    for i in 0..par.interface_count() {
        par_tx.extend(par.take_tx(i as u32));
    }

    let single_flows = deliveries(&single_tx);
    let par_flows = deliveries(&par_tx);
    assert_eq!(
        single_flows.len(),
        par_flows.len(),
        "delivered flow sets differ"
    );
    for (flow, seqs) in &single_flows {
        let p = par_flows
            .get(flow)
            .unwrap_or_else(|| panic!("flow {flow:?} missing from parallel delivery"));
        assert_eq!(seqs, p, "per-flow order diverged for {flow:?}");
    }
    assert_eq!(
        single_tx.len(),
        par_tx.len(),
        "total delivery count differs"
    );
}

/// Route-update interleave exposing a stale FIB-cache entry. The cache
/// answers by exact destination address, so a more-specific route inserted
/// *under* a cached less-specific answer (the hidden-prefix hazard) must
/// invalidate the cached entry — a stale cache would keep steering the
/// destination to the old interface.
#[test]
fn fib_cache_route_update_interleave() {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(
        &mut r,
        "load null\ncreate null\nbind stats null 0 <*, *, *, *, *, *>\n",
    )
    .unwrap();

    let dst = IpAddr::V4(Ipv4Addr::new(10, 1, 2, 3));
    let pkt = |sport: u16| {
        Mbuf::new(
            PacketSpec::udp(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)), dst, sport, 80, 64).build(),
            0,
        )
    };

    r.cp_add_route(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)), 8, 1);

    // Warm the FIB cache: repeat lookups for the same destination hit the
    // exact-match front.
    for s in 0..8 {
        assert_eq!(r.receive(pkt(5000 + s)), Disposition::Forwarded(1));
    }
    let warm = r.fib_cache_stats();
    assert!(warm.hits > 0, "cache never warmed: {warm:?}");

    // Hidden-prefix hazard: 10.1.0.0/16 now covers the cached 10.1.2.3.
    r.cp_add_route(IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)), 16, 2);
    assert_eq!(
        r.receive(pkt(6000)),
        Disposition::Forwarded(2),
        "stale FIB-cache entry steered past the more-specific route"
    );

    // Withdrawal must also invalidate: the destination reverts to /8.
    assert!(r.cp_remove_route(IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)), 16));
    assert_eq!(
        r.receive(pkt(7000)),
        Disposition::Forwarded(1),
        "stale FIB-cache entry survived a route withdrawal"
    );

    let end = r.fib_cache_stats();
    assert!(
        end.invalidations > 0,
        "route updates never invalidated the cache: {end:?}"
    );

    // Byte-identical against an uncached reference: replay the same
    // interleave on a fresh router after `optimize_routes` (which rebuilds
    // the arena layout) and compare egress bytes.
    let mut refr = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut refr.loader);
    run_script(
        &mut refr,
        "load null\ncreate null\nbind stats null 0 <*, *, *, *, *, *>\n",
    )
    .unwrap();
    refr.cp_add_route(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 0)), 8, 1);
    refr.optimize_routes();
    for s in 0..8 {
        assert_eq!(refr.receive(pkt(5000 + s)), Disposition::Forwarded(1));
    }
    refr.cp_add_route(IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)), 16, 2);
    refr.optimize_routes();
    assert_eq!(refr.receive(pkt(6000)), Disposition::Forwarded(2));
    assert!(refr.cp_remove_route(IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)), 16));
    refr.optimize_routes();
    assert_eq!(refr.receive(pkt(7000)), Disposition::Forwarded(1));

    let a: Vec<Vec<u8>> = (0..r.interface_count())
        .flat_map(|i| r.take_tx(i as u32))
        .map(|m| m.data().to_vec())
        .collect();
    let b: Vec<Vec<u8>> = (0..refr.interface_count())
        .flat_map(|i| refr.take_tx(i as u32))
        .map(|m| m.data().to_vec())
        .collect();
    assert_eq!(
        a, b,
        "cached and repacked reference emitted different bytes"
    );
}
