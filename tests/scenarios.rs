//! Larger cross-crate scenarios: multi-router chains combining security,
//! scheduling and monitoring — the "applications" of paper §2 (VPN entry
//! points, edge-router profile enforcement, network monitoring).

use router_plugins::core::ip_core::Disposition;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::testbench::Testbench;
use router_plugins::netsim::traffic::{v6_host, Workload};
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::{FlowTuple, Mbuf};

fn router(script: &str) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(&mut r, script).expect("setup");
    r
}

/// VPN chain: edge router encrypts + schedules; core router just
/// forwards; exit router decrypts. Payload must survive; tampering on
/// the "core" hop must not.
#[test]
fn vpn_chain_with_scheduling() {
    let mut entry = router(
        "load esp\ncreate esp mode=encap key=chain spi=5\n\
         bind ipsec esp 0 <*, *, UDP, *, *, *>\n\
         load drr\ncreate drr quantum=9180\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, *, *, *, *>",
    );
    let mut core = router("");
    let mut exit = router(
        "load esp\ncreate esp mode=decap key=chain spi=5\n\
         bind ipsec esp 0 <*, *, ESP, *, *, *>",
    );

    let payload_packets: Vec<Vec<u8>> = (0..10u16)
        .map(|i| PacketSpec::udp(v6_host(1), v6_host(200), 4000 + i, 9000, 256).build())
        .collect();

    let mut delivered = 0;
    for p in &payload_packets {
        // Entry: encrypt + queue.
        let d = entry.receive(Mbuf::new(p.clone(), 0));
        assert!(matches!(d, Disposition::Queued(1)), "{d:?}");
        entry.pump(1, 1);
        let wire1 = entry.take_tx(1).pop().unwrap();
        // Core: plain forward.
        let d = core.receive(Mbuf::new(wire1.into_data(), 0));
        assert!(matches!(d, Disposition::Forwarded(1)));
        let wire2 = core.take_tx(1).pop().unwrap();
        // Exit: decrypt + forward.
        let d = exit.receive(Mbuf::new(wire2.into_data(), 0));
        assert!(matches!(d, Disposition::Forwarded(1)));
        let out = exit.take_tx(1).pop().unwrap();
        // Three hops aged the hop limit thrice; payload intact.
        assert_eq!(out.data()[7], p[7] - 3);
        assert_eq!(&out.data()[8..], &p[8..]);
        // Ports classify correctly after decapsulation.
        let t = FlowTuple::extract(out.data(), 0).unwrap();
        assert_eq!(t.dport, 9000);
        delivered += 1;
    }
    assert_eq!(delivered, 10);

    // A bit flipped "in the core" kills the packet at the exit.
    let d = entry.receive(Mbuf::new(payload_packets[0].clone(), 0));
    assert!(matches!(d, Disposition::Queued(1)));
    entry.pump(1, 1);
    let mut wire = entry.take_tx(1).pop().unwrap().into_data();
    let n = wire.len() - 5;
    wire[n] ^= 0x10;
    assert!(matches!(
        exit.receive(Mbuf::new(wire, 0)),
        Disposition::Dropped(_)
    ));
}

/// Edge-router profile enforcement (paper §2: "modern edge routers …
/// enforcing the configured profiles of differential service flows"):
/// firewall denies one prefix, stats watches everything, DRR reserves
/// weight for a premium flow — all simultaneously on distinct gates.
#[test]
fn edge_router_full_stack() {
    let mut r = router(
        "load firewall\ncreate firewall action=deny\n\
         bind fw firewall 0 <2001:db8::66, *, *, *, *, *>\n\
         load stats\ncreate stats\n\
         bind stats stats 0 <*, *, *, *, *, *>\n\
         load drr\ncreate drr quantum=1500 limit=32\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>",
    );
    // Premium reservation for sport 7000.
    let out = run_command(&mut r, "bind sched drr 0 <2001:db8::1, *, UDP, 7000, *, *>").unwrap();
    let fid: u64 = out.strip_prefix("filter ").unwrap().parse().unwrap();
    run_command(
        &mut r,
        &format!("msg drr 0 setweight filter={fid} weight=3"),
    )
    .unwrap();

    // Banned host dropped at the firewall gate, not counted by sched.
    let banned = PacketSpec::udp(v6_host(0x66), v6_host(9), 1, 2, 64).build();
    assert!(matches!(
        r.receive(Mbuf::new(banned, 0)),
        Disposition::Dropped(_)
    ));

    // Premium + best-effort flows share the egress under 3:1 weights.
    let premium = PacketSpec::udp(v6_host(1), v6_host(9), 7000, 9000, 1000).build();
    let besteff = PacketSpec::udp(v6_host(2), v6_host(9), 8000, 9000, 1000).build();
    let mut premium_out = 0u32;
    let mut besteff_out = 0u32;
    for _ in 0..600 {
        r.receive(Mbuf::new(premium.clone(), 0));
        r.receive(Mbuf::new(besteff.clone(), 0));
        r.pump(1, 1);
        for m in r.take_tx(1) {
            match FlowTuple::from_mbuf(&m).unwrap().sport {
                7000 => premium_out += 1,
                8000 => besteff_out += 1,
                _ => unreachable!(),
            }
        }
    }
    let ratio = f64::from(premium_out) / f64::from(besteff_out);
    assert!((ratio - 3.0).abs() < 0.4, "premium:besteffort = {ratio}");

    // Stats plugin saw the forwarded traffic but not the firewall drop's
    // flow (dropped before the stats gate? firewall gate precedes stats —
    // dropped packets never reach it).
    let report = run_command(&mut r, "msg stats 0 report").unwrap();
    assert!(report.contains("pkts"), "{report}");
}

/// Mini Table 3: the framework forwards the paper workload correctly in
/// all four kernel configurations (counts, not timing — timing lives in
/// the release benches).
#[test]
fn mini_table3_all_kernels_forward() {
    use router_plugins::core::monolithic::{AltqDrrRouter, BestEffortRouter};
    let workload = Workload::paper_table3();
    let tb = Testbench::new(&workload);

    let mut be = BestEffortRouter::new(4, false);
    be.add_route(v6_host(0), 32, 1);
    assert_eq!(tb.run_best_effort(&mut be, 1).forwarded, 300);

    let mut fw = router(
        "load null\ncreate null\n\
         bind fw null 0 <*, *, *, *, *, *>\n\
         bind ipsec null 0 <*, *, *, *, *, *>\n\
         bind stats null 0 <*, *, *, *, *, *>",
    );
    let s = tb.run_router(&mut fw, 1);
    assert_eq!(s.forwarded, 300);
    assert_eq!(s.cache_misses, 3);

    let mut altq = AltqDrrRouter::new(4, 64, 9180, false);
    altq.add_route(v6_host(0), 32, 1);
    assert_eq!(tb.run_altq(&mut altq, 1).forwarded, 300);

    let mut pd = router(
        "load drr\ncreate drr quantum=9180 limit=512\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>",
    );
    assert_eq!(tb.run_router(&mut pd, 1).forwarded, 300);
}

/// The HSF plugin end to end: two leaves with different shares, DRR
/// fairness within the premium leaf.
#[test]
fn hsf_plugin_end_to_end() {
    let mut r = router("load hsf\ncreate hsf rate=10000000 quantum=1500 limit=64\nattach 1 hsf 0");
    // Leaf 1: premium 70%; leaf 2: default 30%.
    assert_eq!(
        run_command(&mut r, "msg hsf 0 addleaf parent=root ls=7000000").unwrap(),
        "class 1"
    );
    assert_eq!(
        run_command(&mut r, "msg hsf 0 addleaf parent=root ls=3000000").unwrap(),
        "class 2"
    );
    run_command(&mut r, "msg hsf 0 default class=2").unwrap();
    let out = run_command(&mut r, "bind sched hsf 0 <2001:db8::1, *, UDP, *, *, *>").unwrap();
    let premium_fid: u64 = out.strip_prefix("filter ").unwrap().parse().unwrap();
    run_command(&mut r, "bind sched hsf 0 <*, *, UDP, *, *, *>").unwrap();
    run_command(
        &mut r,
        &format!("msg hsf 0 bindfilter filter={premium_fid} class=1"),
    )
    .unwrap();

    let premium = PacketSpec::udp(v6_host(1), v6_host(9), 1, 2, 1000).build();
    let other = PacketSpec::udp(v6_host(2), v6_host(9), 3, 4, 1000).build();
    let (mut p_out, mut o_out) = (0u32, 0u32);
    for i in 0..900 {
        r.set_time_ns(i * 1_000_000);
        r.receive(Mbuf::new(premium.clone(), 0));
        r.receive(Mbuf::new(other.clone(), 0));
        r.pump(1, 1);
        for m in r.take_tx(1) {
            match FlowTuple::from_mbuf(&m).unwrap().src {
                s if s == v6_host(1) => p_out += 1,
                _ => o_out += 1,
            }
        }
    }
    let share = f64::from(p_out) / f64::from(p_out + o_out);
    assert!((share - 0.7).abs() < 0.06, "premium share {share}");
}
