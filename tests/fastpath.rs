//! The zero-allocation fast path must be invisible to an outside
//! observer: running packets through pooled mbufs and batched shard
//! dispatch has to produce byte-identical per-flow outputs, the same
//! drop-reason totals, and the same flow-cache behaviour as the plain
//! clone-per-packet, one-message-per-packet paths it replaces. These
//! tests drive both variants of both data planes over a workload whose
//! flows exercise distinct fates (forwarded+scheduled, firewall-denied,
//! unrouted) and compare everything observable.

use router_plugins::core::ip_core::Disposition;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{ParallelRouter, ParallelRouterConfig, Router, RouterConfig};
use router_plugins::netsim::testbench::Testbench;
use router_plugins::netsim::traffic::{v6_host, Workload};
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::{FlowTuple, Mbuf};
use std::collections::HashMap;
use std::net::IpAddr;

/// Flows exercising distinct fates: routed+scheduled UDP, firewall-denied
/// (dport 9999), and unrouted destinations (outside 2001:db8::/32).
struct DiffFlow {
    src: IpAddr,
    dst: IpAddr,
    sport: u16,
    dport: u16,
    count: usize,
}

fn diff_flows() -> Vec<DiffFlow> {
    let mut flows = Vec::new();
    for i in 0..24u16 {
        flows.push(DiffFlow {
            src: v6_host(10 + i),
            dst: v6_host(200 + (i % 5)),
            sport: 4000 + i,
            dport: 80,
            count: 20 + (i as usize % 7),
        });
    }
    for i in 0..4u16 {
        flows.push(DiffFlow {
            src: v6_host(50 + i),
            dst: v6_host(210),
            sport: 4100 + i,
            dport: 9999,
            count: 10,
        });
    }
    for i in 0..4u16 {
        flows.push(DiffFlow {
            src: v6_host(60 + i),
            dst: IpAddr::V6(std::net::Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, i)),
            sport: 4200 + i,
            dport: 80,
            count: 8,
        });
    }
    flows
}

/// Interleaved packet sequence with a per-flow sequence number stamped in
/// the last 4 payload bytes (checksum verification is off in this rig).
fn diff_packets() -> Vec<Mbuf> {
    let flows = diff_flows();
    let mut seqs = vec![0u32; flows.len()];
    let mut out = Vec::new();
    let mut round = 0usize;
    loop {
        let mut emitted = false;
        for (fi, f) in flows.iter().enumerate() {
            if round < f.count {
                let mut m = Mbuf::new(
                    PacketSpec::udp(f.src, f.dst, f.sport, f.dport, 128).build(),
                    0,
                );
                let seq = seqs[fi];
                seqs[fi] += 1;
                let data = m.data_mut();
                let n = data.len();
                data[n - 4..].copy_from_slice(&seq.to_be_bytes());
                out.push(m);
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
        round += 1;
    }
    out
}

const DIFF_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load firewall\n\
     create firewall action=deny\n\
     bind fw firewall 0 <*, *, UDP, *, 9999, *>\n\
     load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n\
     route 2001:db8::/32 1\n";

/// Per-flow emitted packets as full byte images, grouped by the emitted
/// packet's five-tuple, in emission order. Byte-identical outputs means
/// these maps compare equal.
fn deliveries(tx: &[Mbuf]) -> HashMap<FlowTuple, Vec<Vec<u8>>> {
    let mut map: HashMap<FlowTuple, Vec<Vec<u8>>> = HashMap::new();
    for m in tx {
        let mut t = FlowTuple::from_mbuf(m).expect("emitted packet parses");
        t.rx_if = 0;
        map.entry(t).or_default().push(m.data().to_vec());
    }
    map
}

fn single_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, DIFF_SCRIPT).unwrap();
    r
}

fn parallel_router(shards: usize) -> ParallelRouter {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 256,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut pr, DIFF_SCRIPT).unwrap();
    pr
}

fn assert_same_deliveries(
    reference: &HashMap<FlowTuple, Vec<Vec<u8>>>,
    candidate: &HashMap<FlowTuple, Vec<Vec<u8>>>,
) {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "delivered flow sets differ"
    );
    for (flow, pkts) in reference {
        let c = candidate
            .get(flow)
            .unwrap_or_else(|| panic!("flow {flow:?} missing from candidate delivery"));
        assert_eq!(
            pkts.len(),
            c.len(),
            "per-flow delivery count diverged for {flow:?}"
        );
        assert_eq!(pkts, c, "per-flow bytes diverged for {flow:?}");
    }
}

// ---------------------------------------------------------------------
// Single-threaded router: pooled driver loop vs clone-per-packet
// ---------------------------------------------------------------------

#[test]
fn pooled_single_router_is_byte_identical_to_unpooled() {
    let packets = diff_packets();

    // Reference: clone each prebuilt packet (fresh heap buffer per rx).
    let mut reference = single_router();
    for pkt in &packets {
        let d = reference.receive(pkt.clone());
        if let Disposition::Queued(i) = d {
            reference.pump(i, 1);
        }
    }
    let mut ref_tx = Vec::new();
    for i in 0..reference.interface_count() {
        ref_tx.extend(reference.take_tx(i as u32));
    }

    // Candidate: build every ingress mbuf from the router's pool and
    // recycle transmitted buffers, the way a driver would.
    let mut pooled = single_router();
    let mut pooled_tx = Vec::new();
    for pkt in &packets {
        let m = pooled.mbuf_with(pkt.data(), pkt.rx_if);
        let d = pooled.receive(m);
        if let Disposition::Queued(i) = d {
            pooled.pump(i, 1);
        }
    }
    for i in 0..pooled.interface_count() {
        pooled.take_tx_into(i as u32, &mut pooled_tx);
    }

    assert_same_deliveries(&deliveries(&ref_tx), &deliveries(&pooled_tx));
    assert_eq!(ref_tx.len(), pooled_tx.len());

    // Identical counters everywhere an operator looks.
    let s = reference.stats();
    let p = pooled.stats();
    assert_eq!(s.received, p.received);
    assert_eq!(s.forwarded, p.forwarded);
    assert_eq!(s.dropped_plugin, p.dropped_plugin);
    assert_eq!(s.dropped_no_route, p.dropped_no_route);
    assert_eq!(s.dropped_total(), p.dropped_total());
    assert_eq!(reference.flow_stats().misses, pooled.flow_stats().misses);
    assert_eq!(reference.flow_stats().hits, pooled.flow_stats().hits);

    // The pooled run drew every ingress buffer through the pool and the
    // recycled tx buffers are available for reuse.
    let ps = pooled.pool_stats();
    assert_eq!(ps.acquired, packets.len() as u64);
    assert!(ps.recycled > 0, "driver recycling never reached the pool");
}

// ---------------------------------------------------------------------
// Parallel data plane: batched pooled dispatch vs one-message-per-packet
// ---------------------------------------------------------------------

#[test]
fn batched_parallel_is_byte_identical_to_per_packet_dispatch() {
    let packets = diff_packets();

    // Reference: the established per-packet entry point, cloned mbufs.
    let mut reference = parallel_router(4);
    for pkt in &packets {
        reference.receive(pkt.clone());
    }
    reference.flush();
    let mut ref_tx = Vec::new();
    for i in 0..reference.interface_count() {
        ref_tx.extend(reference.take_tx(i as u32));
    }

    // Candidate: pooled mbufs, dispatched 64 at a time.
    let mut batched = parallel_router(4);
    let mut carrier = batched.batch_carrier();
    for pkt in &packets {
        let m = batched.mbuf_with(pkt.data(), pkt.rx_if);
        carrier.push(m);
        if carrier.len() >= 64 {
            batched.receive_batch(carrier);
            carrier = batched.batch_carrier();
        }
    }
    batched.receive_batch(carrier);
    batched.flush();
    let mut batched_tx = Vec::new();
    for i in 0..batched.interface_count() {
        for m in batched.take_tx(i as u32) {
            batched_tx.push(m);
        }
    }

    assert_same_deliveries(&deliveries(&ref_tx), &deliveries(&batched_tx));
    assert_eq!(ref_tx.len(), batched_tx.len());

    let s = reference.stats();
    let b = batched.stats();
    assert_eq!(s.received, b.received);
    assert_eq!(s.forwarded, b.forwarded);
    assert_eq!(s.dropped_plugin, b.dropped_plugin);
    assert_eq!(s.dropped_no_route, b.dropped_no_route);
    assert_eq!(s.dropped_total(), b.dropped_total());
    assert_eq!(s.dropped_shard_overload, 0);
    assert_eq!(b.dropped_shard_overload, 0);
    assert_eq!(reference.flow_stats().misses, batched.flow_stats().misses);
    assert_eq!(reference.flow_stats().hits, batched.flow_stats().hits);
}

#[test]
fn batch_sizes_agree_with_each_other() {
    // Same workload through batch sizes 1, 8, and 64 of the batched
    // entry point itself: per-flow outputs must not depend on framing.
    let packets = diff_packets();
    let mut outputs = Vec::new();
    for batch in [1usize, 8, 64] {
        let mut pr = parallel_router(4);
        let mut carrier = pr.batch_carrier();
        for pkt in &packets {
            carrier.push(pr.mbuf_with(pkt.data(), pkt.rx_if));
            if carrier.len() >= batch {
                pr.receive_batch(carrier);
                carrier = pr.batch_carrier();
            }
        }
        pr.receive_batch(carrier);
        pr.flush();
        let mut tx = Vec::new();
        for i in 0..pr.interface_count() {
            tx.extend(pr.take_tx(i as u32));
        }
        outputs.push((batch, deliveries(&tx), pr.stats()));
    }
    let (_, ref_deliv, ref_stats) = &outputs[0];
    for (batch, deliv, stats) in &outputs[1..] {
        assert_same_deliveries(ref_deliv, deliv);
        assert_eq!(
            ref_stats.forwarded, stats.forwarded,
            "batch={batch} forwarded diverged"
        );
        assert_eq!(
            ref_stats.dropped_total(),
            stats.dropped_total(),
            "batch={batch} drops diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Steady-state pool behaviour
// ---------------------------------------------------------------------

#[test]
fn steady_state_run_allocates_no_fresh_mbufs() {
    // 10 flows × 100 packets = 1000 per rep; one warm-up rep fills the
    // pool, ten measured reps (10k packets) must never miss it.
    let workload = Workload::uniform(10, 100, 512);
    let tb = Testbench::new(&workload);
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(
        &mut r,
        "load drr\n\
         create drr quantum=9180 limit=512\n\
         attach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>\n",
    )
    .unwrap();
    r.add_route(v6_host(0), 32, 1);

    tb.run_router_pooled(&mut r, 1);
    let warm = r.pool_stats();
    let s = tb.run_router_pooled(&mut r, 10);
    let done = r.pool_stats();

    assert_eq!(s.packets, 10_000);
    assert_eq!(s.forwarded, 10_000);
    assert_eq!(
        done.fresh, warm.fresh,
        "steady state hit the allocator for mbuf buffers"
    );
    assert_eq!(done.acquired - warm.acquired, 10_000);

    // The pool counters surface in the observability snapshot.
    let m = r.metrics_snapshot();
    assert_eq!(m.mbuf_fresh, done.fresh);
    assert_eq!(m.mbuf_acquired, done.acquired);
    assert_eq!(m.mbuf_recycled, done.recycled);
}

#[test]
fn batch_carriers_are_recycled_through_the_scrap_channel() {
    let workload = Workload::uniform(8, 50, 256);
    let tb = Testbench::new(&workload);
    let mut pr = parallel_router(2);
    tb.run_parallel_batched(&mut pr, 2, 64);
    // After the shards drained their batches, the emptied carriers came
    // back: the next carrier is a reused vector, not a fresh one.
    let carrier = pr.batch_carrier();
    assert!(
        carrier.capacity() > 0,
        "no carrier returned through the scrap channel"
    );
    // Dispatcher pool traffic is folded into the merged metrics: the
    // merged counters include at least everything the dispatcher pool
    // itself reports.
    let m = pr.metrics_snapshot();
    let p = pr.pool_stats();
    assert!(p.acquired > 0);
    assert!(m.mbuf_acquired >= p.acquired);
    assert!(m.mbuf_recycled >= p.recycled);
}
