//! Adversarial-traffic resilience: the load-aware sharded data plane
//! must stay observationally equivalent to the single-threaded router
//! under heavy-tailed traffic, and flow-table admission control must
//! make a one-packet-flow flood degrade the flood's own flows instead of
//! established ones — on both data planes.

use router_plugins::classifier::FlowTableConfig;
use router_plugins::core::dataplane::SteerConfig;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{ParallelRouter, ParallelRouterConfig, Router, RouterConfig};
use router_plugins::netsim::traffic::{v6_host, Workload};
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::{FlowTuple, Mbuf};
use std::collections::HashMap;

/// Wildcard-classified, routed rig: one gate exercises the flow cache on
/// every packet, the route keeps 2001:db8::/32 deliverable.
const RIG_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     route 2001:db8::/32 1\n";

/// Stamp a per-flow sequence number into the last 4 payload bytes of
/// each packet, in emission order (checksum verification is off in
/// these rigs).
fn stamp_seqs(pkts: &mut [Mbuf]) {
    let mut seqs: HashMap<FlowTuple, u32> = HashMap::new();
    for m in pkts.iter_mut() {
        let t = FlowTuple::from_mbuf(m).expect("workload packet parses");
        let seq = seqs.entry(t).or_insert(0);
        let s = *seq;
        *seq += 1;
        let data = m.data_mut();
        let n = data.len();
        data[n - 4..].copy_from_slice(&s.to_be_bytes());
    }
}

/// Per-flow delivered sequence numbers, grouped by five-tuple.
fn deliveries(tx: &[Mbuf]) -> HashMap<FlowTuple, Vec<u32>> {
    let mut map: HashMap<FlowTuple, Vec<u32>> = HashMap::new();
    for m in tx {
        let mut t = FlowTuple::from_mbuf(m).expect("emitted packet parses");
        t.rx_if = 0;
        let d = m.data();
        let seq = u32::from_be_bytes(d[d.len() - 4..].try_into().unwrap());
        map.entry(t).or_default().push(seq);
    }
    map
}

fn single_router() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, RIG_SCRIPT).unwrap();
    r
}

fn parallel_router(shards: usize, steer: Option<SteerConfig>) -> ParallelRouter {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut par = ParallelRouter::new(
        ParallelRouterConfig {
            shards,
            router: RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            },
            ingress_depth: 4096,
            steer,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut par, RIG_SCRIPT).unwrap();
    par
}

fn drain_single(r: &mut Router) -> Vec<Mbuf> {
    let mut tx = Vec::new();
    for i in 0..r.interface_count() {
        tx.extend(r.take_tx(i as u32));
    }
    tx
}

fn drain_parallel(par: &mut ParallelRouter) -> Vec<Mbuf> {
    par.flush();
    let mut tx = Vec::new();
    for i in 0..par.interface_count() {
        tx.extend(par.take_tx(i as u32));
    }
    tx
}

/// The differential acceptance gate for load-aware placement: a steered
/// parallel router must deliver exactly the per-flow packet sequences of
/// the single-threaded reference under elephant-and-mice traffic, even
/// while the steerer pins elephant-suspect flows off their hash home.
#[test]
fn steered_parallel_matches_single_router_on_heavy_tailed_traffic() {
    let mut pkts = Workload::heavy_tailed(120, 4, 64, 0xE1E).build();
    stamp_seqs(&mut pkts);

    let mut single = single_router();
    for pkt in &pkts {
        let d = single.receive(pkt.clone());
        if let router_plugins::core::ip_core::Disposition::Queued(i) = d {
            single.pump(i, 1);
        }
    }
    let single_tx = drain_single(&mut single);

    // Small window so hot-shard detection engages inside this run.
    let mut par = parallel_router(
        4,
        Some(SteerConfig {
            window: 256,
            ..SteerConfig::default()
        }),
    );
    for (n, pkt) in pkts.iter().enumerate() {
        par.receive(pkt.clone());
        // Pace the offer so elephants cannot overflow a shard FIFO: an
        // overload shed would (correctly) break equivalence.
        if n % 512 == 511 {
            par.flush();
        }
    }
    let par_tx = drain_parallel(&mut par);

    assert_eq!(single_tx.len(), par_tx.len(), "total delivery count");
    let single_flows = deliveries(&single_tx);
    let par_flows = deliveries(&par_tx);
    assert_eq!(single_flows.len(), par_flows.len(), "delivered flow sets");
    for (flow, seqs) in &single_flows {
        let p = par_flows
            .get(flow)
            .unwrap_or_else(|| panic!("flow {flow:?} missing from steered delivery"));
        assert_eq!(seqs, p, "per-flow order diverged for {flow:?}");
    }
    let st = par.steer_stats().expect("steering was configured");
    assert!(st.tracked > 0, "steerer tracked no flows");
    // The workload must have been spicy enough to exercise hot detection
    // at least once across 4 shards with elephants present; if not, the
    // placement degenerates to hash and the test would prove nothing.
    assert!(
        st.steered + st.untracked < pkts.len() as u64,
        "sanity: stats are per-flow, not per-packet"
    );
}

fn established_specs() -> Vec<(std::net::IpAddr, std::net::IpAddr, u16, u16)> {
    (0..32u16)
        .map(|i| (v6_host(10 + i), v6_host(200), 4000 + i, 80))
        .collect()
}

fn established_packet(spec: &(std::net::IpAddr, std::net::IpAddr, u16, u16)) -> Mbuf {
    Mbuf::new(
        PacketSpec::udp(spec.0, spec.1, spec.2, spec.3, 64).build(),
        0,
    )
}

/// Tiny, admission-controlled flow table: 64 records, 5ms idle window.
fn defended_flow_table() -> FlowTableConfig {
    FlowTableConfig {
        buckets: 256,
        initial_records: 32,
        max_records: 64,
        max_idle_ns: 5_000_000,
        ..FlowTableConfig::default()
    }
}

/// One-packet-flow flood against the single-threaded router: admission
/// control must deny the flood's inserts (degrading only the attacker's
/// flows to the uncached path) while every established-flow packet is
/// delivered and no established record is recycled.
#[test]
fn syn_flood_degrades_attacker_not_established_flows_single() {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        flow_table: defended_flow_table(),
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, RIG_SCRIPT).unwrap();

    let established = established_specs();
    let mut sent_established = 0usize;
    r.set_time_ns(0);
    for spec in &established {
        r.receive(established_packet(spec));
        sent_established += 1;
    }

    let flood = Workload::one_packet_flood(2000, 64, 0xF100D).build();
    let mut now = 1_000_000u64; // flood starts 1ms in
    for (n, pkt) in flood.into_iter().enumerate() {
        now += 10_000; // 10µs per flood packet
        r.set_time_ns(now);
        r.receive(pkt);
        // Keepalives every 2ms keep the established flows inside the
        // 5ms idle window throughout.
        if n % 200 == 199 {
            for spec in &established {
                r.receive(established_packet(spec));
                sent_established += 1;
            }
        }
    }

    // Final round: every established flow must still be cached (a pure
    // hit, no insert) and delivered.
    let hits_before = r.flow_stats().hits;
    for spec in &established {
        r.receive(established_packet(spec));
        sent_established += 1;
    }
    let f = r.flow_stats();
    assert_eq!(
        f.hits - hits_before,
        established.len() as u64,
        "an established flow lost its cache record"
    );
    assert!(f.denied > 0, "admission control never engaged");
    assert_eq!(f.recycled, 0, "flood recycled an established record");
    assert!(f.live <= 64, "flow table exceeded its cap");

    let tx = drain_single(&mut r);
    let established_delivered = tx
        .iter()
        .filter(|m| {
            let t = FlowTuple::from_mbuf(m).unwrap();
            t.dport == 80 && t.sport >= 4000 && t.sport < 4032
        })
        .count();
    assert_eq!(
        established_delivered, sent_established,
        "established-flow packets were lost under the flood"
    );

    // The denial shows up in the observability snapshot.
    let m = r.metrics_snapshot();
    assert_eq!(m.flow_admission_denied, f.denied);
    assert_eq!(m.flow_inline_expired, f.inline_expired);
}

/// The same flood against the sharded data plane: per-shard admission
/// control, merged counters, zero established loss.
#[test]
fn syn_flood_degrades_attacker_not_established_flows_parallel() {
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut par = ParallelRouter::new(
        ParallelRouterConfig {
            shards: 4,
            router: RouterConfig {
                verify_checksums: false,
                flow_table: defended_flow_table(),
                ..RouterConfig::default()
            },
            ingress_depth: 4096,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut par, RIG_SCRIPT).unwrap();

    let established = established_specs();
    let mut sent_established = 0usize;
    par.set_time_ns(0);
    for spec in &established {
        par.receive(established_packet(spec));
        sent_established += 1;
    }

    let flood = Workload::one_packet_flood(2000, 64, 0xF100D).build();
    let mut now = 1_000_000u64;
    for (n, pkt) in flood.into_iter().enumerate() {
        now += 10_000;
        par.receive(pkt);
        if n % 200 == 199 {
            par.set_time_ns(now); // control barrier; also drains FIFOs
            for spec in &established {
                par.receive(established_packet(spec));
                sent_established += 1;
            }
        }
    }
    par.set_time_ns(now);
    for spec in &established {
        par.receive(established_packet(spec));
        sent_established += 1;
    }

    let tx = drain_parallel(&mut par);
    let f = par.flow_stats();
    assert!(f.denied > 0, "admission control never engaged on any shard");
    assert_eq!(f.recycled, 0, "flood recycled an established record");
    assert!(f.live <= 4 * 64, "merged live count exceeded the caps");

    let established_delivered = tx
        .iter()
        .filter(|m| {
            let t = FlowTuple::from_mbuf(m).unwrap();
            t.dport == 80 && t.sport >= 4000 && t.sport < 4032
        })
        .count();
    assert_eq!(
        established_delivered, sent_established,
        "established-flow packets were lost under the flood"
    );

    let stats = par.stats();
    assert_eq!(stats.dropped_total(), 0, "nothing should drop in this rig");
}

/// Flow-record conservation at the router level, both planes: every
/// successful insert is still accounted for by live + expired + recycled
/// + inline-reclaimed records after heavy churn and an idle sweep.
#[test]
fn flow_churn_accounting_is_conserved_on_both_planes() {
    const IDLE_NS: u64 = 2_000_000;

    // Single-threaded.
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        flow_table: defended_flow_table(),
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, RIG_SCRIPT).unwrap();
    let mut expired = 0u64;
    let mut now = 0u64;
    for wave in 0..6u16 {
        for i in 0..40u16 {
            let m = Mbuf::new(
                PacketSpec::udp(
                    v6_host(1000 + wave * 64 + i),
                    v6_host(200),
                    5000 + i,
                    80,
                    64,
                )
                .build(),
                0,
            );
            r.receive(m);
        }
        now += IDLE_NS + 1;
        r.set_time_ns(now);
        expired += r.expire_idle_flows(IDLE_NS) as u64;
    }
    let f = r.flow_stats();
    let inserted = f.misses - f.denied;
    assert_eq!(
        inserted,
        f.live as u64 + expired + f.recycled + f.inline_expired,
        "single-plane conservation: {f:?} expired={expired}"
    );

    // Parallel.
    let mut template = router_plugins::core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut par = ParallelRouter::new(
        ParallelRouterConfig {
            shards: 4,
            router: RouterConfig {
                verify_checksums: false,
                flow_table: defended_flow_table(),
                ..RouterConfig::default()
            },
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut par, RIG_SCRIPT).unwrap();
    let mut expired = 0u64;
    let mut now = 0u64;
    for wave in 0..6u16 {
        for i in 0..40u16 {
            let m = Mbuf::new(
                PacketSpec::udp(
                    v6_host(1000 + wave * 64 + i),
                    v6_host(200),
                    5000 + i,
                    80,
                    64,
                )
                .build(),
                0,
            );
            par.receive(m);
        }
        now += IDLE_NS + 1;
        par.set_time_ns(now);
        expired += par.expire_idle_flows(IDLE_NS) as u64;
    }
    par.flush();
    let f = par.flow_stats();
    let inserted = f.misses - f.denied;
    assert_eq!(
        inserted,
        f.live as u64 + expired + f.recycled + f.inline_expired,
        "parallel-plane conservation: {f:?} expired={expired}"
    );
}
