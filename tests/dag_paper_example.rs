//! E1 — the paper's Table 1 / Figure 4 classification example, end to
//! end, plus DAG-vs-linear equivalence on that filter set.

use router_plugins::classifier::filter::paper_table1_filters;
use router_plugins::classifier::{BmpKind, DagTable, LinearTable};
use router_plugins::packet::FlowTuple;
use std::net::IpAddr;

fn t(src: &str, dst: &str, proto: u8) -> FlowTuple {
    FlowTuple {
        src: src.parse::<IpAddr>().unwrap(),
        dst: dst.parse::<IpAddr>().unwrap(),
        proto,
        sport: 1234,
        dport: 80,
        rx_if: 0,
    }
}

#[test]
fn figure4_walkthrough_both_bmp_plugins() {
    for kind in [BmpKind::Patricia, BmpKind::Bspl] {
        let mut dag = DagTable::new(kind);
        let ids: Vec<_> = paper_table1_filters()
            .into_iter()
            .enumerate()
            .map(|(i, f)| dag.insert(f, i).unwrap())
            .collect();

        // Paper §5.1.1: "the triple <128.252.153.1, 128.252.154.7, UDP>"
        // — Table 1's filters give filter 4 for the .154 destination
        // (only the source-/24 + UDP filter matches).
        let got = dag
            .lookup(&t("128.252.153.1", "128.252.154.7", 17))
            .unwrap();
        assert_eq!(got.0, ids[3]);

        // With Table 1's own destination (128.252.153.7) the most
        // specific match is filter 2, "a proper subset of filter 4".
        let got = dag
            .lookup(&t("128.252.153.1", "128.252.153.7", 17))
            .unwrap();
        assert_eq!(got.0, ids[1]);

        // TCP between the same pair → filter 3.
        let got = dag.lookup(&t("128.252.153.1", "128.252.153.7", 6)).unwrap();
        assert_eq!(got.0, ids[2]);

        // 129.* to the named host over TCP → filter 1.
        let got = dag.lookup(&t("129.5.6.7", "192.94.233.10", 6)).unwrap();
        assert_eq!(got.0, ids[0]);

        // Filters 1 and 4 are disjoint: a packet matching filter 1's
        // source cannot match filter 4.
        assert!(dag.lookup(&t("129.5.6.7", "1.2.3.4", 17)).is_none());
    }
}

#[test]
fn dag_agrees_with_linear_scan_on_table1() {
    let mut dag = DagTable::new(BmpKind::Bspl);
    let mut lin = LinearTable::new();
    for (i, f) in paper_table1_filters().into_iter().enumerate() {
        dag.insert(f.clone(), i).unwrap();
        lin.insert(f, i);
    }
    let probes = [
        t("128.252.153.1", "128.252.153.7", 17),
        t("128.252.153.1", "128.252.153.7", 6),
        t("128.252.153.1", "128.252.154.7", 17),
        t("128.252.153.99", "128.252.153.7", 17),
        t("129.0.0.1", "192.94.233.10", 6),
        t("129.0.0.1", "192.94.233.10", 17),
        t("130.0.0.1", "192.94.233.10", 6),
        t("128.252.153.1", "128.252.153.7", 1),
    ];
    for p in probes {
        let d = dag.lookup(&p).map(|(_, v)| *v);
        let l = lin.lookup(&p).map(|(_, v)| *v);
        assert_eq!(d, l, "diverged on {p}");
    }
}

#[test]
fn lookup_cost_flat_in_filter_count() {
    // E1/E5 seam: the DAG's per-level accesses do not grow with filters.
    let mut small = DagTable::new(BmpKind::Bspl);
    for (i, f) in paper_table1_filters().into_iter().enumerate() {
        small.insert(f, i).unwrap();
    }
    let mut big = DagTable::new(BmpKind::Bspl);
    for (i, f) in paper_table1_filters().into_iter().enumerate() {
        big.insert(f, i).unwrap();
    }
    for i in 0..2000u32 {
        let f = format!(
            "172.{}.{}.0/24, 10.0.0.0/8, TCP, *, {}, *",
            i % 250,
            (i / 250) % 250,
            1000 + (i % 30000)
        );
        big.insert(f.parse().unwrap(), 10 + i as usize).unwrap();
    }
    let probe = t("128.252.153.1", "128.252.153.7", 17);
    let (_, s_small) = small.lookup_with_stats(&probe);
    let (_, s_big) = big.lookup_with_stats(&probe);
    assert_eq!(s_small.dag_edges, s_big.dag_edges);
    assert_eq!(s_small.port_probes, s_big.port_probes);
    // BSPL probes grow at most logarithmically with populated lengths,
    // bounded by the Table 2 worst case of 5+5 for IPv4.
    assert!(
        s_big.addr_probes <= 10,
        "addr probes = {}",
        s_big.addr_probes
    );
}

/// E2's headline, as a CI-enforced fact: with every IPv4 prefix length
/// populated at both address levels (the paper's accounting regime), the
/// worst-case lookup costs exactly the paper's Table 2 numbers —
/// 1 + 1 + 2·log2(32) + 2 + 6 = 20 memory accesses.
#[test]
fn table2_ipv4_worst_case_is_exactly_20() {
    use router_plugins::classifier::{AddrMatch, FilterSpec, PortMatch};
    use router_plugins::lpm::Prefix;

    let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    let mut id = 0u32;
    for sl in 1..=31u8 {
        dag.insert(
            FilterSpec {
                src: AddrMatch::V4(Prefix::new(u32::MAX, sl)),
                dst: AddrMatch::V4(Prefix::new(u32::MAX, 31)),
                proto: Some(17),
                sport: PortMatch::eq(1000),
                dport: PortMatch::eq(2000),
                rx_if: None,
            },
            id,
        )
        .unwrap();
        id += 1;
    }
    for dl in 1..=31u8 {
        dag.insert(
            FilterSpec {
                src: AddrMatch::V4(Prefix::new(u32::MAX, 31)),
                dst: AddrMatch::V4(Prefix::new(u32::MAX, dl)),
                proto: Some(17),
                sport: PortMatch::eq(1000),
                dport: PortMatch::eq(2000),
                rx_if: None,
            },
            id,
        )
        .unwrap();
        id += 1;
    }
    let probe = FlowTuple {
        src: IpAddr::V4(std::net::Ipv4Addr::from(u32::MAX)),
        dst: IpAddr::V4(std::net::Ipv4Addr::from(u32::MAX)),
        proto: 17,
        sport: 1000,
        dport: 2000,
        rx_if: 0,
    };
    let (hit, stats) = dag.lookup_with_stats(&probe);
    assert!(hit.is_some());
    assert_eq!(stats.bmp_fn_ptr, 1);
    assert_eq!(stats.hash_fn_ptr, 1);
    assert_eq!(stats.addr_probes, 10, "2·log2(32)");
    assert_eq!(stats.port_probes, 2);
    assert_eq!(stats.dag_edges, 6);
    assert_eq!(stats.total(), 20, "the paper's Table 2 IPv4 total");
}
