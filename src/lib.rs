//! # router-plugins — Router Plugins (SIGCOMM '98) in Rust
//!
//! Umbrella crate re-exporting the workspace: a full reproduction of
//! *Decasper, Dittia, Parulkar, Plattner — "Router Plugins: A Software
//! Architecture for Next Generation Routers"*.
//!
//! ```
//! use router_plugins::core::{Router, RouterConfig};
//! use router_plugins::core::plugins::register_builtin_factories;
//! use router_plugins::core::pmgr::run_script;
//!
//! let mut router = Router::new(RouterConfig::default());
//! register_builtin_factories(&mut router.loader);
//! run_script(&mut router, "
//!     load drr
//!     create drr quantum=9180
//!     attach 1 drr 0
//!     bind sched drr 0 <*, *, UDP, *, *, *>
//!     route 2001:db8::/32 1
//! ").unwrap();
//! ```
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

/// Wire formats, checksums, `Mbuf`, the six-tuple (`rp-packet`).
pub use rp_packet as packet;

/// Longest-prefix-match algorithms — the BMP plugins (`rp-lpm`).
pub use rp_lpm as lpm;

/// The AIU: DAG filter tables + flow cache (`rp-classifier`).
pub use rp_classifier as classifier;

/// Packet schedulers: DRR, H-FSC, FIFO, RED (`rp-sched`).
pub use rp_sched as sched;

/// The plugin framework and router (`router-core`).
pub use router_core as core;

/// Real-traffic I/O plane: pluggable network-device backends — UDP,
/// TAP, pcap replay/capture, loopback — and the driver binding them to
/// either data plane (`rp-netdev`).
pub use rp_netdev as netdev;

/// Simulated testbed: workloads, testbench, SSP daemon (`rp-netsim`).
pub use rp_netsim as netsim;
